(** Real multicore trace replay on OCaml 5 domains.

    The static {!Multicore} model predicts per-core slowpath load; this
    module actually {e runs} the datapath in parallel, mirroring OVS's PMD
    deployment: flows are RSS-sharded over N domains (the same
    {!Multicore.rss_hash}, so flow placement is identical to the model's),
    each domain replays its shard against a private {!Datapath.t} (per-core
    caches) over a {!Gf_pipeline.Pipeline.copy} replica, and the per-shard
    {!Metrics.t} are merged into an aggregate.

    Because shards are disjoint by flow and every domain is deterministic,
    [`Domains] and [`Sequential] modes produce {b identical} merged metrics
    (property-tested) — domains only change wall-clock time, never
    results. *)

type mode =
  [ `Domains  (** one [Domain.spawn] per shard — real parallelism *)
  | `Sequential
    (** same sharding, shards replayed one after another on the calling
        domain — the validation twin of [`Domains], and the per-shard
        timing source that is undistorted by time-slicing when the host
        has fewer cores than shards *)
  | `Streamed
    (** the batched streaming engine (long-lived workers fed over SPSC
        rings); results with this mode are produced by
        [Gf_engine.Engine.replay] — {!replay} rejects it
        ([invalid_arg]) because the engine lives above this library *) ]

type shard_run = {
  domain_id : int;
  packets : int;
  metrics : Metrics.t;
  wall_seconds : float;  (** this shard's own replay time *)
  flow_cycles : (int, int) Hashtbl.t;
      (** slowpath cycles per flow id (the {!Multicore} census, per shard) *)
}

type result = {
  domains : int;
  mode : mode;
  shards : shard_run array;
  merged : Metrics.t;  (** {!Metrics.aggregate} of all shards *)
  telemetry : Gf_telemetry.Telemetry.t option;
      (** Merged shard telemetry (registries sum, recorder streams
          concatenate in shard order, series interleave by packet index);
          [None] unless [replay ~telemetry] was given.  Deterministic —
          [`Domains] and [`Sequential] agree on it exactly. *)
  wall_seconds : float;  (** whole replay, spawn to last join *)
  critical_path_seconds : float;
      (** max per-shard wall time — the wall clock of the parallel run when
          every domain has a dedicated core *)
}

val shard : domains:int -> Gf_workload.Trace.t -> Gf_workload.Trace.t array
(** Partition packets by [Multicore.rss_hash flow_id mod domains],
    preserving per-shard time order.  Shards are disjoint by flow and
    their packets union back to the input.  [domains = 1] returns the
    input trace itself. *)

val replay :
  ?mode:mode ->
  ?domains:int ->
  ?telemetry:Gf_telemetry.Telemetry.config ->
  cfg:Datapath.config ->
  Gf_pipeline.Pipeline.t ->
  Gf_workload.Trace.t ->
  result
(** Replay the trace over [domains] datapaths ([mode] defaults to
    [`Domains], [domains] to 1).  The input pipeline is only read (it is
    replicated per domain with {!Gf_pipeline.Pipeline.copy}); caches are
    created fresh per domain, like OVS PMD threads.  [telemetry] creates a
    private sink per shard from the given config (never shared across
    domains) and merges them into {!result.telemetry} after the join. *)

val merged_flow_cycles : result -> (int, int) Hashtbl.t
(** Union of per-shard slowpath censuses (disjoint by construction). *)

val measured_loads : result -> Multicore.t
(** Measured per-domain slowpath cycles, wrapped for comparison with the
    static model. *)

val model_loads : result -> Multicore.t
(** The static model's prediction from the same census:
    [Multicore.distribute] over {!merged_flow_cycles}.  Equals
    {!measured_loads} exactly — the model and the engine use the same hash
    — which is the cross-validation the tests pin down. *)
