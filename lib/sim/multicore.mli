(** Multi-core slowpath scaling (paper Appendix A).

    OVS distributes SmartNIC cache misses across vSwitch cores with RSS:
    each flow hashes to one core, so per-flow work never splits and
    per-core load drops roughly proportionally with the core count.  This
    module turns a per-flow slowpath-cycle census (collected by
    {!Datapath.run}'s [miss_sink]) into per-core load figures. *)

type t = {
  cores : int;
  loads : int array;  (** Cycles per core, length [cores]. *)
}

val rss_hash : int -> int
(** The flow-stable multiplicative hash used to spread flows over cores;
    also the sharding function of {!Parallel.shard}, so the static model
    and the real replay engine agree on flow placement by construction. *)

val distribute : cores:int -> (int, int) Hashtbl.t -> t
(** RSS-hash each flow id onto one of [cores] cores and sum its cycles
    there. Deterministic. *)

val of_loads : int array -> t
(** Wrap measured per-core loads (e.g. per-domain slowpath cycles observed
    by {!Parallel.replay}) so they can be compared against the static model
    with the same [imbalance]/[speedup] operators. *)

val max_load : t -> int
(** The bottleneck core's cycles. *)

val total_load : t -> int

val imbalance : t -> float
(** max over mean per-core load; 1.0 = perfectly balanced. *)

val speedup : baseline:t -> t -> float
(** Bottleneck-load ratio between a baseline (typically 1 core) and this
    distribution. *)
