(** Per-run measurement record produced by {!Datapath.run}. *)

type t = {
  mutable packets : int;
  mutable hw_hits : int;  (** served entirely by the SmartNIC cache *)
  mutable sw_hits : int;  (** SmartNIC miss, software cache hit *)
  mutable slowpaths : int;  (** full userspace pipeline executions *)
  mutable drops : int;  (** packets whose decision was Drop *)
  mutable hw_installs : int;
  mutable hw_shared : int;  (** Gigaflow: segments reusing an existing entry *)
  mutable hw_rejected : int;
  mutable hw_evictions : int;
  latency : Gf_util.Stats.Acc.t;  (** per-packet end-to-end latency, us *)
  mutable cycles_userspace : int;
  mutable cycles_partition : int;
  mutable cycles_rulegen : int;
  mutable cycles_sw_search : int;
  mutable hw_entries_peak : int;
  mutable hw_entries_final : int;
}

val create : unit -> t

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and cycle totals add, latency
    accumulators merge exactly (Chan's pairwise update), and occupancy
    figures sum (per-domain caches are disjoint, so the aggregate footprint
    is the sum; peaks are summed pessimistically).  [src] is unchanged. *)

val aggregate : t list -> t
(** Fresh metrics equal to merging the whole list (parallel replay's
    cross-shard aggregate). *)

val hw_hit_rate : t -> float
val hw_miss_count : t -> int
(** Packets that missed the SmartNIC cache (sw hits + slowpaths). *)

val total_cycles : t -> int
val mean_latency_us : t -> float

val overhead_ratio : t -> float
(** (partition + rulegen) / userspace cycles — the paper's Fig. 13
    metric. *)

val pp : Format.formatter -> t -> unit
