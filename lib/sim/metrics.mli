(** Per-run measurement record produced by {!Datapath.run}. *)

(** Per-cache-level counters, keyed by the level's name and kept in walk
    order.  [hits + misses] is how often the level was consulted (deeper
    levels only see packets every shallower level missed). *)
type level = {
  level_name : string;
  mutable hits : int;
  mutable misses : int;  (** consulted but missed *)
  mutable installs : int;  (** fresh entries written *)
  mutable shared : int;  (** installs satisfied by existing entries *)
  mutable rejected : int;  (** installs refused (full / infeasible) *)
  mutable evictions : int;  (** idle-expiry + revalidation evictions *)
  mutable pressure_evictions : int;
      (** entries evicted to admit an install at capacity (replacement
          policy), counted separately from [evictions] *)
  mutable deferred : int;
      (** hardware installs withheld by the admission policy (flow not yet
          hot enough for a slot) *)
  mutable demotions : int;
      (** entries evicted by the admission re-partition sweep (flow went
          cold); also included in [evictions] *)
  mutable work : int;  (** lookup work units spent at this level *)
  mutable latency_us : float;  (** total latency attributed to hits here *)
  mutable occupancy_peak : int;
  mutable occupancy_final : int;
  latency_hist : Gf_telemetry.Histogram.t;
      (** Per-hit latency distribution at this level.  Always on: recording
          is allocation-free, and it is what gives {!pp_levels} and the
          telemetry sampler per-level p50/p99. *)
}

type t = {
  mutable packets : int;
  mutable hw_hits : int;  (** served entirely by a hardware-tier level *)
  mutable sw_hits : int;  (** NIC miss, software-tier level hit *)
  mutable slowpaths : int;  (** full userspace pipeline executions *)
  mutable drops : int;  (** packets whose decision was Drop *)
  mutable hw_installs : int;
  mutable hw_shared : int;  (** Gigaflow: segments reusing an existing entry *)
  mutable hw_rejected : int;
  mutable hw_evictions : int;
  mutable hw_pressure_evictions : int;
      (** hardware-tier capacity-pressure evictions (see level
          [pressure_evictions]) *)
  mutable hw_deferred : int;
      (** hardware-tier installs withheld by the admission policy *)
  mutable hw_demotions : int;
      (** hardware-tier admission-sweep demotions (also in [hw_evictions]) *)
  latency : Gf_util.Stats.Acc.t;  (** per-packet end-to-end latency, us *)
  mutable cycles_userspace : int;
  mutable cycles_partition : int;
  mutable cycles_rulegen : int;
  mutable cycles_sw_search : int;
  mutable hw_entries_peak : int;
  mutable hw_entries_final : int;
  latency_hist : Gf_telemetry.Histogram.t;
      (** End-to-end per-packet latency distribution (same samples as
          [latency], but bucketed for quantiles and exact merging). *)
  mutable levels : level list;
      (** Per-level breakdown, walk order.  The [hw_*] fields above remain
          the hardware-tier aggregate view of the same events. *)
}

val create : unit -> t

val level : t -> string -> level
(** Find the level record named [name], creating (and appending) it if
    absent — the datapath registers its hierarchy this way. *)

val find_level : t -> string -> level option
val levels : t -> level list

val level_hit_rate : level -> float
(** hits / (hits + misses): the hit rate among packets that reached this
    level ([0.0] if never consulted). *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and cycle totals add, latency
    accumulators merge exactly (Chan's pairwise update), occupancy figures
    sum (per-domain caches are disjoint, so the aggregate footprint is the
    sum; peaks are summed pessimistically), and per-level counters merge by
    level name.  [src] is unchanged. *)

val aggregate : t list -> t
(** Fresh metrics equal to merging the whole list (parallel replay's
    cross-shard aggregate). *)

val hw_hit_rate : t -> float
(** [0.0] on a zero-packet run (never nan — downstream JSON and telemetry
    samplers want finite numbers). *)

val hw_miss_count : t -> int
(** Packets that missed every hardware-tier level (sw hits + slowpaths). *)

val total_cycles : t -> int

val mean_latency_us : t -> float
(** [0.0] when no latency samples were recorded. *)

val overhead_ratio : t -> float
(** (partition + rulegen) / userspace cycles — the paper's Fig. 13
    metric.  [0.0] when no userspace cycles were spent. *)

val pp : Format.formatter -> t -> unit

val pp_levels : Format.formatter -> t -> unit
(** One aligned row per level: hits/misses/hit-rate/installs/evictions/
    work/occupancy plus p50/p99 hit latency from the per-level
    histograms. *)

val to_registry : t -> Gf_telemetry.Registry.t -> unit
(** Export every counter into the registry under stable
    [gigaflow_*]/[gigaflow_level_*] Prometheus-style names (per-level
    series carry a [level] label; latency histograms are registered
    in-place).  Values are {e set}, not accumulated, so re-exporting the
    same metrics is idempotent. *)
