(** Adaptive SLO-driven control loop (ROADMAP item 3).

    The controller closes the loop the loadtest harness (PR 7) left open:
    it consumes one observation per measurement window — the window's SLO
    verdict from {!Gf_engine.Loadtest}, plus the miss-cause census the
    traversal tracer keeps (PR 8) and the [Metrics] admission/pressure
    counters — and emits {e bounded} actuations on the datapath's online
    knobs: {!Gf_sim.Datapath.set_admission} (retarget the heavy-hitter
    K / threshold without losing the learned hot set),
    {!Gf_sim.Datapath.set_evict_policy} per level, and software-level
    capacity ({!Gf_sim.Datapath.set_level_capacity}).

    Observation → decision → actuation, window by window:

    - {b Observe.}  The per-window record carries hit-rate, sojourn
      quantiles and drop rate; the census deltas since the previous
      window attribute the misses ({e cold} vs {e deferred_admission} vs
      {e pressure_evicted} vs {e tag_chain_stall}), which is what picks
      the remedy.  Without a tracer the controller falls back to the
      coarser [Metrics] deltas.
    - {b Decide.}  Pure rules over the observation: a violated hardware
      hit-rate floor is answered according to the dominant miss cause
      (deferred → lower the admission threshold, then grow K;
      pressure / stall → stop rejecting: flip hardware eviction to LRU,
      or raise the threshold if already evicting; cold → admit faster),
      a latency/drop violation with a healthy hit rate grows the
      software tail's capacity.  A clean window decides nothing.
    - {b Actuate.}  At most [max_actions] knob writes per window, each
      knob rate-limited by a [cooldown] of windows, every bound clamped
      ([min_threshold], [max_k], [max_sw_capacity]) — the controller can
      nudge, not thrash.

    Determinism: decisions are pure functions of the observation stream
    (no RNG, no wall clock), the actuations are deterministic datapath
    transitions, and the hook fires at window closes — a pure function
    of the stream position (see [Loadtest.run ?controller]).  A
    controller that never acts is observation-transparent: the run's
    report is bit-identical to one without it, at any window cadence. *)

type spec = {
  min_threshold : int;  (** floor when lowering the admission threshold *)
  max_k : int;  (** cap when growing the sketch's K *)
  max_sw_capacity : int;  (** cap when growing a software level's bound *)
  cooldown : int;
      (** windows to wait before re-actuating the same knob (0 = every
          window) *)
  max_actions : int;  (** actuation budget per window *)
}

val default_spec : spec
(** [min_threshold = 1], [max_k = 4096], [max_sw_capacity = 65536],
    [cooldown = 1], [max_actions = 2]. *)

val spec_to_string : spec -> string

val spec_of_string : string -> (spec, string) result
(** Accepts ["slo"] (the defaults) optionally followed by comma-separated
    [key=value] overrides: [min-threshold], [max-k], [max-sw-capacity],
    [cooldown], [max-actions] — e.g.
    ["slo,min-threshold=2,max-actions=1"]. *)

type action = {
  act_window : int;  (** window index; [-1] = the warmup observation *)
  act_knob : string;
      (** ["admission"] (threshold / K retune) or ["evict"] / ["capacity"]
          (per-level) *)
  act_level : string;  (** level name; [""] for datapath-global knobs *)
  act_from : string;  (** old setting, human-readable *)
  act_to : string;  (** new setting *)
  act_reason : string;
      (** violated objective + dominant miss cause that picked the
          remedy *)
}

type t

val create : ?spec:spec -> unit -> t

val on_window : t -> Gf_sim.Datapath.t -> Gf_engine.Loadtest.window -> unit
(** The {!Gf_engine.Loadtest.run} [?controller] hook: observe the window,
    decide, actuate on [dp].  Clean windows only refresh the baselines
    (no datapath mutation whatsoever). *)

val actions : t -> action list
(** Every actuation taken so far, chronological. *)

val action_json : action -> Gf_util.Json.t
(** One ["controller_action"] JSONL record (validated by
    [gigaflow-sim telemetry-check]). *)
