module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Cache_level = Gf_sim.Cache_level
module Evict = Gf_cache.Evict
module Heavy_hitter = Gf_offload.Heavy_hitter
module Telemetry = Gf_telemetry.Telemetry
module Tracer = Gf_telemetry.Tracer
module Loadtest = Gf_engine.Loadtest
module Json = Gf_util.Json

type spec = {
  min_threshold : int;
  max_k : int;
  max_sw_capacity : int;
  cooldown : int;
  max_actions : int;
}

let default_spec =
  {
    min_threshold = 1;
    max_k = 4096;
    max_sw_capacity = 65536;
    cooldown = 1;
    max_actions = 2;
  }

(* Raising the admission threshold has no spec knob (nothing reasonable to
   tune): it just must not run away. *)
let threshold_ceiling = 1 lsl 20

let spec_to_string s =
  Printf.sprintf
    "slo,min-threshold=%d,max-k=%d,max-sw-capacity=%d,cooldown=%d,max-actions=%d"
    s.min_threshold s.max_k s.max_sw_capacity s.cooldown s.max_actions

let spec_of_string str =
  let parts =
    String.split_on_char ',' (String.lowercase_ascii (String.trim str))
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match parts with
  | [] -> Error "empty controller spec"
  | head :: overrides when head = "slo" || head = "default" ->
      let apply acc kv =
        match acc with
        | Error _ -> acc
        | Ok spec -> (
            match String.index_opt kv '=' with
            | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
            | Some i -> (
                let key = String.sub kv 0 i in
                let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                match (key, int_of_string_opt v) with
                | _, None -> Error (Printf.sprintf "bad integer in %S" kv)
                | "min-threshold", Some n when n >= 1 ->
                    Ok { spec with min_threshold = n }
                | "max-k", Some n when n >= 1 -> Ok { spec with max_k = n }
                | "max-sw-capacity", Some n when n >= 1 ->
                    Ok { spec with max_sw_capacity = n }
                | "cooldown", Some n when n >= 0 -> Ok { spec with cooldown = n }
                | "max-actions", Some n when n >= 0 ->
                    Ok { spec with max_actions = n }
                | ("min-threshold" | "max-k" | "max-sw-capacity"), Some _ ->
                    Error (Printf.sprintf "%s must be >= 1" key)
                | ("cooldown" | "max-actions"), Some _ ->
                    Error (Printf.sprintf "%s must be >= 0" key)
                | _ -> Error (Printf.sprintf "unknown controller key %S" key)))
      in
      List.fold_left apply (Ok default_spec) overrides
  | head :: _ ->
      Error
        (Printf.sprintf "unknown controller spec %S (expected slo[,key=value...])"
           head)

type action = {
  act_window : int;
  act_knob : string;
  act_level : string;
  act_from : string;
  act_to : string;
  act_reason : string;
}

(* Miss-cause deltas for one window: the census (exact, per level) summed
   across levels when a tracer is attached, else the coarser [Metrics]
   admission/pressure counters. *)
type causes = { cold : int; deferred : int; pressure : int; stall : int }

let zero_causes = { cold = 0; deferred = 0; pressure = 0; stall = 0 }

type t = {
  spec : spec;
  mutable tick : int;  (* observations so far; drives cooldowns *)
  cooldowns : (string, int) Hashtbl.t;  (* knob key -> tick last actuated *)
  mutable prev : causes;  (* cumulative baselines for the deltas *)
  mutable acts : action list;  (* reverse chronological *)
}

let create ?(spec = default_spec) () =
  { spec; tick = 0; cooldowns = Hashtbl.create 8; prev = zero_causes; acts = [] }

let actions t = List.rev t.acts

let action_json a =
  Json.Obj
    [
      ("type", Json.Str "controller_action");
      ("window", Json.Int a.act_window);
      ("knob", Json.Str a.act_knob);
      ("level", Json.Str a.act_level);
      ("from", Json.Str a.act_from);
      ("to", Json.Str a.act_to);
      ("reason", Json.Str a.act_reason);
    ]

(* ----------------------------- observe ------------------------------- *)

let cumulative_causes dp =
  match Option.map Telemetry.tracer (Datapath.telemetry dp) with
  | Some (Some tr) ->
      let n = Array.length (Datapath.level_names dp) in
      let sum cause =
        let acc = ref 0 in
        for i = 0 to n - 1 do
          acc := !acc + Tracer.census_get tr ~level:i cause
        done;
        !acc
      in
      {
        cold = sum Tracer.Cold;
        deferred = sum Tracer.Deferred_admission;
        (* Expired / revalidated entries died of old age or a rule change,
           not of the knobs this controller owns: lump them with cold. *)
        pressure = sum Tracer.Pressure_evicted;
        stall = sum Tracer.Tag_chain_stall;
      }
  | _ ->
      let m = Datapath.metrics dp in
      {
        cold = 0;
        deferred = m.Metrics.hw_deferred;
        pressure = m.Metrics.hw_pressure_evictions + m.Metrics.hw_rejected;
        stall = 0;
      }

let dominant c =
  (* Deterministic priority on ties: pressure (most actionable) beats
     deferred beats stall beats cold. *)
  List.fold_left
    (fun (best_tag, best_n) (tag, n) ->
      if n > best_n then (tag, n) else (best_tag, best_n))
    ("pressure", c.pressure)
    [ ("deferred", c.deferred); ("stall", c.stall); ("cold", c.cold) ]
  |> fst

(* ------------------------------ decide ------------------------------- *)

let violated prefix w =
  List.exists
    (fun v ->
      String.length v >= String.length prefix
      && String.sub v 0 (String.length prefix) = prefix)
    w.Loadtest.w_violations

(* Candidate moves.  Each returns [Some (knob_key, perform)] when feasible
   on the current datapath state, where [perform ()] mutates the knob and
   returns the action record's (knob, level, from, to). *)

let move_lower_threshold t dp =
  match (Datapath.config dp).Datapath.admission with
  | Heavy_hitter.Heavy_hitter { k; threshold }
    when threshold > t.spec.min_threshold ->
      let threshold' = max t.spec.min_threshold (threshold / 2) in
      Some
        ( "admission.threshold",
          fun () ->
            Datapath.set_admission dp
              (Heavy_hitter.Heavy_hitter { k; threshold = threshold' });
            ("admission", "", string_of_int threshold, string_of_int threshold')
        )
  | _ -> None

let move_raise_threshold _t dp =
  match (Datapath.config dp).Datapath.admission with
  | Heavy_hitter.Heavy_hitter { k; threshold } when threshold < threshold_ceiling
    ->
      let threshold' = min threshold_ceiling (max 1 threshold * 2) in
      Some
        ( "admission.threshold",
          fun () ->
            Datapath.set_admission dp
              (Heavy_hitter.Heavy_hitter { k; threshold = threshold' });
            ("admission", "", string_of_int threshold, string_of_int threshold')
        )
  | _ -> None

let move_grow_k t dp =
  match (Datapath.config dp).Datapath.admission with
  | Heavy_hitter.Heavy_hitter { k; threshold } when k < t.spec.max_k ->
      let k' = min t.spec.max_k (k * 2) in
      Some
        ( "admission.k",
          fun () ->
            Datapath.set_admission dp
              (Heavy_hitter.Heavy_hitter { k = k'; threshold });
            ("admission", "", Printf.sprintf "k=%d" k, Printf.sprintf "k=%d" k')
        )
  | _ -> None

(* Flip the first still-rejecting hardware level to LRU (walk order); one
   level per action, so a two-level NIC takes two windows to converge —
   bounded actuation by construction. *)
let move_hw_evict_lru _t dp =
  List.find_map
    (fun l ->
      if
        Cache_level.tier l = Cache_level.Hardware
        && Cache_level.evict_policy l = Evict.Reject
      then
        let name = Cache_level.name l in
        Some
          ( "evict:" ^ name,
            fun () ->
              Datapath.set_evict_policy dp ~level:name Evict.Lru;
              ("evict", name, Evict.to_string Evict.Reject,
               Evict.to_string Evict.Lru) )
      else None)
    (Datapath.levels dp)

(* Double the deepest growable software level's admission bound (the
   wildcard / cuckoo tail absorbs the slowpath storm that blows the
   latency SLO). *)
let move_grow_sw_capacity t dp =
  List.find_map
    (fun l ->
      let cap = Cache_level.capacity l in
      if Cache_level.tier l = Cache_level.Software && cap < t.spec.max_sw_capacity
      then
        let name = Cache_level.name l in
        Some
          ( "capacity:" ^ name,
            fun () ->
              Datapath.set_level_capacity dp ~level:name
                (min t.spec.max_sw_capacity (cap * 2));
              (* Re-read: the level may clamp to its physical storage. *)
              ( "capacity",
                name,
                string_of_int cap,
                string_of_int (Cache_level.capacity l) ) )
      else None)
    (List.rev (Datapath.levels dp))

(* ------------------------------ actuate ------------------------------ *)

let cooled_down t key =
  match Hashtbl.find_opt t.cooldowns key with
  | None -> true
  | Some t0 -> t.tick - t0 > t.spec.cooldown

let on_window t dp w =
  t.tick <- t.tick + 1;
  let cum = cumulative_causes dp in
  let d =
    {
      cold = cum.cold - t.prev.cold;
      deferred = cum.deferred - t.prev.deferred;
      pressure = cum.pressure - t.prev.pressure;
      stall = cum.stall - t.prev.stall;
    }
  in
  t.prev <- cum;
  if w.Loadtest.w_violations <> [] then begin
    let hit_viol = violated "hw_hit_rate" w in
    let lat_viol =
      violated "p50_us" w || violated "p99_us" w || violated "p999_us" w
    in
    let drop_viol = violated "drop_rate" w in
    let cause = dominant d in
    let reason =
      Printf.sprintf "%s; %s-dominant misses (cold=%d deferred=%d pressure=%d stall=%d)"
        (String.concat ", " w.Loadtest.w_violations)
        cause d.cold d.deferred d.pressure d.stall
    in
    (* Remedy ladder for this observation, most targeted first. *)
    let moves =
      (if hit_viol then
         match cause with
         | "deferred" -> [ move_lower_threshold; move_grow_k; move_hw_evict_lru ]
         | "pressure" | "stall" -> [ move_hw_evict_lru; move_raise_threshold ]
         | _ (* cold *) ->
             [ move_hw_evict_lru; move_lower_threshold; move_grow_sw_capacity ]
       else [])
      @
      if lat_viol || drop_viol then [ move_grow_sw_capacity; move_hw_evict_lru ]
      else []
    in
    let budget = ref t.spec.max_actions in
    List.iter
      (fun move ->
        if !budget > 0 then
          match move t dp with
          | Some (key, perform) when cooled_down t key ->
              let act_knob, act_level, act_from, act_to = perform () in
              Hashtbl.replace t.cooldowns key t.tick;
              decr budget;
              t.acts <-
                {
                  act_window = w.Loadtest.w_index;
                  act_knob;
                  act_level;
                  act_from;
                  act_to;
                  act_reason = reason;
                }
                :: t.acts
          | Some _ | None -> ())
      moves
  end
