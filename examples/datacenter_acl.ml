(* Datacenter ACL scenario: the PISCES-style L2L3-ACL pipeline (PSC) under a
   generated datacenter workload — the paper's running example.  Compares
   the Megaflow (32K) baseline against Gigaflow (4x8K) end to end.

   Run with:  dune exec examples/datacenter_acl.exe
   (Scaled to ~20K flows so it finishes in a few seconds.) *)

module Catalog = Gf_pipelines.Catalog
module Ruleset = Gf_workload.Ruleset
module Pipebench = Gf_workload.Pipebench
module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Tablefmt = Gf_util.Tablefmt

let scale = 5 (* 1/scale of the paper's 100K flows *)

let () =
  let info = Option.get (Catalog.find "PSC") in
  Printf.printf "Generating a datacenter ACL workload on %s (%s)...\n%!"
    info.Catalog.code info.Catalog.description;
  let w =
    Pipebench.make ~combos:(131_072 / scale) ~unique_flows:(100_000 / scale)
      ~info ~locality:Ruleset.High ~seed:7 ()
  in
  Printf.printf "  %d pipeline rules, %d unique flows, %d packets\n\n%!"
    (Ruleset.rule_count w.Pipebench.ruleset)
    (Array.length w.Pipebench.flows)
    (Gf_workload.Trace.packet_count w.Pipebench.trace);
  let t =
    Tablefmt.create ~title:"Megaflow (32K-equivalent) vs Gigaflow (4x8K-equivalent)"
      [ "Backend"; "Hit rate"; "Misses"; "Peak entries"; "Mean latency" ]
  in
  List.iter
    (fun (name, cfg) ->
      Printf.printf "Running %s...\n%!" name;
      let dp = Datapath.create cfg (Pipebench.pipeline w) in
      let m = Datapath.run dp w.Pipebench.trace in
      Tablefmt.add_row t
        [
          name;
          Tablefmt.fmt_pct (Metrics.hw_hit_rate m);
          Tablefmt.fmt_int (Metrics.hw_miss_count m);
          Tablefmt.fmt_int m.Metrics.hw_entries_peak;
          Printf.sprintf "%.2f us" (Metrics.mean_latency_us m);
        ])
    [
      ("Megaflow", Datapath.emc_mf_sw ~mf_capacity:(32_768 / scale) ());
      ( "Gigaflow",
        Datapath.emc_gf_sw
          ~gf:(Gf_core.Config.v ~tables:4 ~table_capacity:(8192 / scale) ())
          () );
    ];
  print_newline ();
  Tablefmt.print t;
  print_endline
    "Gigaflow serves more of the ACL-heavy traffic from the SmartNIC because\n\
     flows share their L2-context, route and service sub-traversals."
