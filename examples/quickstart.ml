(* Quickstart: build a tiny L2/L3 vSwitch pipeline by hand, process packets
   through a Gigaflow LTM cache, and watch sub-traversal sharing happen.

   Run with:  dune exec examples/quickstart.exe *)

module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Fmatch = Gf_flow.Fmatch
module Headers = Gf_flow.Headers
module Action = Gf_pipeline.Action
module Ofrule = Gf_pipeline.Ofrule
module Oftable = Gf_pipeline.Oftable
module Pipeline = Gf_pipeline.Pipeline
module Gigaflow = Gf_core.Gigaflow
module Ltm_cache = Gf_core.Ltm_cache

let () =
  (* 1. A three-table pipeline: MAC admission -> routing -> service ACL. *)
  let admission =
    Oftable.create ~id:0 ~name:"mac_admission"
      ~match_fields:(Field.Set.of_list [ Field.Eth_src ])
      ~miss:(Action.drop ())
  in
  let routing =
    Oftable.create ~id:1 ~name:"l3_routing"
      ~match_fields:(Field.Set.of_list [ Field.Ip_dst ])
      ~miss:(Action.drop ())
  in
  let acl =
    Oftable.create ~id:2 ~name:"service_acl"
      ~match_fields:(Field.Set.of_list [ Field.Ip_proto; Field.Tp_dst ])
      ~miss:(Action.drop ())
  in
  let pipeline = Pipeline.create ~name:"quickstart" ~entry:0 [ admission; routing; acl ] in

  (* Two known VMs, one /24 route, two allowed services. *)
  let vm1 = Headers.mac "02:00:00:00:00:01" and vm2 = Headers.mac "02:00:00:00:00:02" in
  let add table ~priority fmatch action =
    Pipeline.add_rule pipeline ~table
      (Ofrule.v ~id:(Pipeline.fresh_rule_id pipeline) ~priority ~fmatch ~action)
  in
  List.iter
    (fun mac -> add 0 ~priority:10 (Fmatch.of_fields [ (Field.Eth_src, mac) ]) (Action.goto 1))
    [ vm1; vm2 ];
  add 1 ~priority:10
    (Fmatch.with_prefix Fmatch.any Field.Ip_dst ~value:(Headers.ipv4 "10.1.2.0") ~len:24)
    (Action.goto ~set_fields:[ (Field.Eth_dst, Headers.mac "02:00:00:00:0f:fe") ] 2);
  List.iter
    (fun port ->
      add 2 ~priority:10
        (Fmatch.of_fields [ (Field.Ip_proto, Headers.proto_tcp); (Field.Tp_dst, port) ])
        (Action.output 7))
    [ 80; 443 ];

  (* 2. A Gigaflow instance: 3 LTM tables of 64 entries. *)
  let gf = Gigaflow.create (Gf_core.Config.v ~tables:3 ~table_capacity:64 ()) in

  let packet ~mac ~dst ~dport =
    Headers.tcp ~eth_src:mac ~src:(Headers.ipv4 "10.0.0.9") ~dst:(Headers.ipv4 dst)
      ~sport:33333 ~dport ()
  in
  let send descr flow =
    match Gigaflow.lookup gf ~now:0.0 ~pipeline flow with
    | Some hit, _ ->
        Printf.printf "%-34s -> CACHE HIT  (%s, %d LTM tables matched)\n" descr
          (Format.asprintf "%a" Action.pp_terminal hit.Ltm_cache.terminal)
          hit.Ltm_cache.tables_matched
    | None, _ -> (
        match Gigaflow.handle_miss gf ~now:0.0 ~pipeline flow with
        | Ok outcome ->
            let segs = List.length outcome.Gigaflow.segments in
            let fresh, shared =
              match outcome.Gigaflow.install with
              | Ltm_cache.Installed { fresh; shared; _ } -> (fresh, shared)
              | Ltm_cache.Rejected -> (0, 0)
            in
            Printf.printf
              "%-34s -> miss: slowpath took %d lookups, cached %d sub-traversals \
               (%d new, %d shared)\n"
              descr
              (Gf_pipeline.Traversal.length outcome.Gigaflow.traversal)
              segs fresh shared
        | Error e ->
            Printf.printf "%-34s -> slowpath error: %s\n" descr
              (Format.asprintf "%a" Gf_pipeline.Executor.pp_error e))
  in

  print_endline "--- first flows populate the cache ---";
  send "vm1 -> 10.1.2.5:80" (packet ~mac:vm1 ~dst:"10.1.2.5" ~dport:80);
  send "vm2 -> 10.1.2.6:443" (packet ~mac:vm2 ~dst:"10.1.2.6" ~dport:443);

  print_endline "--- repeats hit the cache ---";
  send "vm1 -> 10.1.2.5:80 (again)" (packet ~mac:vm1 ~dst:"10.1.2.5" ~dport:80);

  print_endline "--- cross-products hit without ever missing ---";
  (* vm2's admission segment + the shared route + vm1's port-80 ACL segment
     combine: this flow was never seen, yet it is served by the cache. *)
  send "vm2 -> 10.1.2.99:80 (NEW flow)" (packet ~mac:vm2 ~dst:"10.1.2.99" ~dport:80);

  let cache = Gigaflow.cache gf in
  Printf.printf "\nCache: %d entries across %s tables; rule-space coverage %.0f\n"
    (Ltm_cache.occupancy cache)
    (String.concat "+"
       (Array.to_list (Array.map string_of_int (Ltm_cache.table_occupancies cache))))
    (Gf_core.Coverage.count cache ~entry_tag:0);
  Printf.printf "Mean sub-traversal sharing: %.2f installations per entry\n"
    (Ltm_cache.mean_sharing cache)
