(* Dynamic workloads: a second wave of flows arrives mid-run (the paper's
   Fig. 18 scenario, scaled down).  Megaflow must evict and re-learn;
   Gigaflow's cross-product coverage absorbs much of the new traffic.

   Run with:  dune exec examples/dynamic_workload.exe *)

module Catalog = Gf_pipelines.Catalog
module Ruleset = Gf_workload.Ruleset
module Trace = Gf_workload.Trace
module Datapath = Gf_sim.Datapath
module Tablefmt = Gf_util.Tablefmt

let () =
  let info = Option.get (Catalog.find "PSC") in
  let rs = Ruleset.build ~combos:32_768 ~info ~seed:21 () in
  let nc = Ruleset.combo_count rs in
  let half = 10_000 in
  (* Two flow populations over disjoint halves of the rule space. *)
  let flows1 =
    Ruleset.sample_flows rs ~combo_filter:(fun i -> i < nc / 2) ~seed:31
      ~locality:Ruleset.High ~n:half
  in
  let flows2 =
    Ruleset.sample_flows rs ~combo_filter:(fun i -> i >= nc / 2) ~seed:32
      ~locality:Ruleset.High ~n:half
  in
  let phase = 60.0 in
  let t1 =
    Trace.generate ~duration:(2.0 *. phase) ~mean_flow_size:24.0 ~start_spread:0.9
      ~lifetime_frac:0.4 ~seed:41 ~flows:flows1 ()
  in
  let t2 =
    Trace.generate ~duration:phase ~mean_flow_size:24.0 ~start_spread:0.9
      ~lifetime_frac:0.4 ~seed:42 ~flows:flows2 ()
  in
  let trace = Trace.concat t1 t2 ~offset:phase in
  Printf.printf "Trace: %d packets over %.0f s; new workload arrives at t=%.0f s\n\n%!"
    (Trace.packet_count trace) (2.0 *. phase) phase;

  let bucket = 10.0 in
  let buckets = int_of_float (2.0 *. phase /. bucket) in
  let series name cfg =
    Printf.printf "Running %s...\n%!" name;
    let dp = Datapath.create cfg (Ruleset.pipeline rs) in
    let hits = Array.make buckets 0 and totals = Array.make buckets 0 in
    ignore
      (Datapath.run
         ~on_packet:(fun pkt outcome _ ->
           let b = min (buckets - 1) (int_of_float (pkt.Trace.time /. bucket)) in
           totals.(b) <- totals.(b) + 1;
           match outcome with
           | Datapath.Hw_hit -> hits.(b) <- hits.(b) + 1
           | Datapath.Sw_hit | Datapath.Slowpath -> ())
         dp trace);
    Array.init buckets (fun b ->
        if totals.(b) = 0 then nan else float_of_int hits.(b) /. float_of_int totals.(b))
  in
  let mf =
    series "Megaflow (6K)"
      (Datapath.without_software (Datapath.emc_mf_sw ~mf_capacity:6144 ()))
  in
  let gf =
    series "Gigaflow (4x1.5K)"
      (Datapath.without_software
         (Datapath.emc_gf_sw ~gf:(Gf_core.Config.v ~tables:4 ~table_capacity:1536 ()) ()))
  in
  print_newline ();
  let t = Tablefmt.create [ "t (s)"; "Megaflow hit rate"; "Gigaflow hit rate" ] in
  for b = 0 to buckets - 1 do
    let cell a = if Float.is_nan a then "-" else Tablefmt.fmt_pct ~dp:1 a in
    Tablefmt.add_row t
      [ Printf.sprintf "%.0f" (float_of_int b *. bucket); cell mf.(b); cell gf.(b) ]
  done;
  Tablefmt.print t;
  print_endline "Watch the Megaflow column dip when the second workload lands."
