#!/bin/sh
# Repo gate: build, tests, formatting.  Run before every commit.
set -e
cd "$(dirname "$0")"

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== dune build @fmt"
dune build @fmt

echo "== telemetry smoke"
# Small fixed-seed run with the full telemetry stack on; telemetry-check
# fails unless every line parses as JSON and the required series are there.
TDIR=$(mktemp -d)
trap 'rm -rf "$TDIR"' EXIT
dune exec --no-build -- gigaflow-sim run -p PSC --flows 2000 --combos 512 --seed 77 \
  --telemetry-out "$TDIR/telemetry.jsonl" --sample-every 2000 --trace-events 4 \
  > /dev/null
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/telemetry.jsonl"
test -s "$TDIR/telemetry.prom" || { echo "missing Prometheus snapshot" >&2; exit 1; }
grep -q '^gigaflow_packets_total 10615$' "$TDIR/telemetry.prom" || {
  echo "Prometheus snapshot missing expected packet count" >&2; exit 1; }

echo "check.sh: all gates passed"
