#!/bin/sh
# Repo gate: build, tests, formatting.  Run before every commit.
set -e
cd "$(dirname "$0")"

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== dune build @fmt"
dune build @fmt

echo "check.sh: all gates passed"
