#!/bin/sh
# Repo gate: build, tests, formatting.  Run before every commit.
set -e
cd "$(dirname "$0")"

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== dune build @fmt"
dune build @fmt

echo "== telemetry smoke"
# Small fixed-seed run with the full telemetry stack on; telemetry-check
# fails unless every line parses as JSON and the required series are there.
TDIR=$(mktemp -d)
trap 'rm -rf "$TDIR"' EXIT
dune exec --no-build -- gigaflow-sim run -p PSC --flows 2000 --combos 512 --seed 77 \
  --telemetry-out "$TDIR/telemetry.jsonl" --sample-every 2000 --trace-events 4 \
  > /dev/null
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/telemetry.jsonl"
test -s "$TDIR/telemetry.prom" || { echo "missing Prometheus snapshot" >&2; exit 1; }
grep -q '^gigaflow_packets_total 10615$' "$TDIR/telemetry.prom" || {
  echo "Prometheus snapshot missing expected packet count" >&2; exit 1; }

echo "== capacity-stress smoke"
# Tiny capacities + churn trace + LRU eviction: the run must stay healthy
# under sustained pressure — non-zero pressure evictions, no NaN anywhere,
# and telemetry that still validates.
dune exec --no-build -- gigaflow-sim run -p PSC --flows 2000 --combos 512 --seed 77 \
  --churn --churn-active 1024 --table-capacity 64 --evict-policy lru \
  --telemetry-out "$TDIR/churn.jsonl" --sample-every 2000 --trace-events 4 \
  > "$TDIR/churn.out"
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/churn.jsonl"
grep -Eq '^gigaflow_hw_pressure_evictions_total [1-9]' "$TDIR/churn.prom" || {
  echo "capacity stress produced no pressure evictions" >&2; exit 1; }
if grep -qi 'nan' "$TDIR/churn.out" "$TDIR/churn.prom"; then
  echo "NaN leaked into capacity-stress output" >&2; exit 1
fi

echo "check.sh: all gates passed"
