#!/bin/sh
# Repo gate: build, tests, formatting.  Run before every commit.
set -e
cd "$(dirname "$0")"

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== dune build @fmt"
dune build @fmt

echo "== telemetry smoke"
# Small fixed-seed run with the full telemetry stack on; telemetry-check
# fails unless every line parses as JSON and the required series are there.
TDIR=$(mktemp -d)
trap 'rm -rf "$TDIR"' EXIT
dune exec --no-build -- gigaflow-sim run -p PSC --flows 2000 --combos 512 --seed 77 \
  --telemetry-out "$TDIR/telemetry.jsonl" --sample-every 2000 --trace-events 4 \
  > /dev/null
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/telemetry.jsonl"
test -s "$TDIR/telemetry.prom" || { echo "missing Prometheus snapshot" >&2; exit 1; }
grep -q '^gigaflow_packets_total 10615$' "$TDIR/telemetry.prom" || {
  echo "Prometheus snapshot missing expected packet count" >&2; exit 1; }

echo "== capacity-stress smoke"
# Tiny capacities + churn trace + LRU eviction: the run must stay healthy
# under sustained pressure — non-zero pressure evictions, no NaN anywhere,
# and telemetry that still validates.
dune exec --no-build -- gigaflow-sim run -p PSC --flows 2000 --combos 512 --seed 77 \
  --churn --churn-active 1024 --table-capacity 64 --evict-policy lru \
  --telemetry-out "$TDIR/churn.jsonl" --sample-every 2000 --trace-events 4 \
  > "$TDIR/churn.out"
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/churn.jsonl"
grep -Eq '^gigaflow_hw_pressure_evictions_total [1-9]' "$TDIR/churn.prom" || {
  echo "capacity stress produced no pressure evictions" >&2; exit 1; }
if grep -qi 'nan' "$TDIR/churn.out" "$TDIR/churn.prom"; then
  echo "NaN leaked into capacity-stress output" >&2; exit 1
fi

echo "== batched engine smoke"
# A single-domain streaming run processes the whole trace through one
# datapath, so on a fixed seed it must agree with the per-packet walker
# on every headline counter; 4 domains shard flows over per-core caches
# (counters legitimately differ), so that run only has to stay healthy —
# valid telemetry, no NaN — while exercising the SPSC rings and the
# poison shutdown.
dune exec --no-build -- gigaflow-sim run -p PSC --flows 2000 --combos 512 --seed 77 \
  > "$TDIR/walker.out"
dune exec --no-build -- gigaflow-sim run -p PSC --flows 2000 --combos 512 --seed 77 \
  --engine batched --domains 1 --batch-size 64 \
  > "$TDIR/batched.out"
dune exec --no-build -- gigaflow-sim run -p PSC --flows 2000 --combos 512 --seed 77 \
  --engine batched --domains 4 --batch-size 64 \
  --telemetry-out "$TDIR/batched.jsonl" --sample-every 2000 \
  > "$TDIR/batched4.out"
for metric in 'packets' 'SmartNIC hit rate' 'slowpath executions' 'installs' 'mean latency'; do
  w=$(grep -F "| $metric " "$TDIR/walker.out")
  b=$(grep -F "| $metric " "$TDIR/batched.out")
  test "$w" = "$b" || {
    echo "batched engine diverged from walker on '$metric':" >&2
    echo "  walker:  $w" >&2
    echo "  batched: $b" >&2
    exit 1
  }
done
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/batched.jsonl"
if grep -qi 'nan' "$TDIR/batched.out" "$TDIR/batched4.out"; then
  echo "NaN leaked into batched engine output" >&2; exit 1
fi

echo "== offload admission smoke"
# Constrained hardware slots + elephant/mice trace: heavy-hitter admission
# must strictly beat install-on-miss on SmartNIC hit rate, emit defer
# events into telemetry that still validates, and keep NaN out of the
# output.
dune exec --no-build -- gigaflow-sim run -p PSC --flows 20000 --combos 8192 --seed 77 \
  --trace elephant --hierarchy mf_sw --tables 1 --capacity 16 \
  > "$TDIR/offload_reject.out"
dune exec --no-build -- gigaflow-sim run -p PSC --flows 20000 --combos 8192 --seed 77 \
  --trace elephant --hierarchy mf_sw_hh --tables 1 --capacity 16 \
  --telemetry-out "$TDIR/offload.jsonl" --sample-every 2000 --trace-events 4 \
  > "$TDIR/offload_hh.out"
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/offload.jsonl"
hh=$(grep -F '| SmartNIC hit rate' "$TDIR/offload_hh.out" | grep -Eo '[0-9]+\.[0-9]+')
rj=$(grep -F '| SmartNIC hit rate' "$TDIR/offload_reject.out" | grep -Eo '[0-9]+\.[0-9]+')
awk -v hh="$hh" -v rj="$rj" 'BEGIN { exit !(hh + 0 > rj + 0) }' || {
  echo "heavy-hitter admission did not beat reject baseline (hh=$hh% vs reject=$rj%)" >&2
  exit 1
}
grep -q '"kind":"defer"' "$TDIR/offload.jsonl" || {
  echo "no defer events in heavy-hitter telemetry" >&2; exit 1; }
if grep -qi 'nan' "$TDIR/offload_hh.out" "$TDIR/offload_reject.out"; then
  echo "NaN leaked into offload smoke output" >&2; exit 1
fi

echo "== loadtest SLO gate smoke"
# Healthy operating point: a 10 kpps offered load on the PSC workload with
# SLO bounds it comfortably meets must PASS (exit 0) with --gate, and its
# JSONL report must validate.  The same workload oversubscribed at 2 Mpps
# against a zero-drop SLO must FAIL (non-zero exit) — the gate both passes
# and fails for the right reasons.
dune exec --no-build -- gigaflow-sim loadtest -p PSC --flows 2000 --combos 512 --seed 77 \
  --rate 1e4 --warmup 4000 --window 4000 --windows 3 \
  --slo-p50 50 --slo-p99 1500 --slo-p999 3000 --gate -o "$TDIR/loadtest.jsonl" \
  > "$TDIR/loadtest.out"
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/loadtest.jsonl"
grep -q 'SLO gate: PASS' "$TDIR/loadtest.out" || {
  echo "healthy loadtest did not report PASS" >&2; exit 1; }
if dune exec --no-build -- gigaflow-sim loadtest -p PSC --flows 2000 --combos 512 --seed 77 \
  --rate 2e6 --warmup 4000 --window 4000 --windows 3 \
  --slo-drop-rate 0.0 --gate > "$TDIR/loadtest_fail.out" 2>&1; then
  echo "oversubscribed loadtest passed a zero-drop SLO gate" >&2; exit 1
fi
grep -q 'SLO gate: FAIL' "$TDIR/loadtest_fail.out" || {
  echo "oversubscribed loadtest did not report FAIL" >&2; exit 1; }

echo "== adaptive control smoke"
# Drifting-skew loadtest on the gf_sw_hh preset: the static configuration
# (Reject NIC frozen on stale elephants) must FAIL the gate, the same run
# with --controller slo must PASS it by flipping the NIC to LRU off the
# blown warmup window, and the JSONL report — controller_action lines
# included — must validate with no NaN anywhere.
CTL="-p PSC --flows 20000 --combos 8192 --seed 42 --hierarchy gf_sw_hh \
  --tables 2 --capacity 128 --trace drift --epochs 6 --drift 128 --zipf 1.2 \
  --rate 1e5 --warmup 20000 --window 20000 --windows 3 --slo-p50 50"
if dune exec --no-build -- gigaflow-sim loadtest $CTL --gate \
  > "$TDIR/ctl_static.out" 2>&1; then
  echo "static drifting-skew loadtest passed a gate it should fail" >&2; exit 1
fi
grep -q 'SLO gate: FAIL' "$TDIR/ctl_static.out" || {
  echo "static drifting-skew loadtest did not report FAIL" >&2; exit 1; }
dune exec --no-build -- gigaflow-sim loadtest $CTL --controller slo --gate \
  -o "$TDIR/ctl.jsonl" > "$TDIR/ctl.out"
grep -q 'SLO gate: PASS' "$TDIR/ctl.out" || {
  echo "controlled drifting-skew loadtest did not report PASS" >&2; exit 1; }
grep -q 'Controller actions:' "$TDIR/ctl.out" || {
  echo "controller reported no actions" >&2; exit 1; }
dune exec --no-build -- gigaflow-sim telemetry-check "$TDIR/ctl.jsonl" \
  | grep -Eq '[1-9][0-9]* controller actions' || {
  echo "controller_action lines missing from validated JSONL" >&2; exit 1; }
# \bnan\b, not plain 'nan': action reasons legitimately contain
# "...-dominant".
if grep -Eqi '(^|[^a-z])nan([^a-z]|$)' "$TDIR/ctl.out" "$TDIR/ctl.jsonl"; then
  echo "NaN leaked into adaptive control output" >&2; exit 1
fi

echo "== profile smoke"
# Sub-traversal tracing profiler on the drift trace: folded stacks must
# be non-empty, the chrome trace must be schema-valid JSON, and the
# miss-cause census must reconcile exactly with the Metrics miss
# counters (the profile command exits non-zero on a mismatch;
# telemetry-check re-verifies the JSONL reconciliation independently).
dune exec --no-build -- gigaflow-sim profile -p PSC --flows 20000 --combos 8192 --seed 77 \
  --trace drift --hierarchy gf_sw_hh --sample 1/64 --out "$TDIR/profile" \
  > "$TDIR/profile.out"
test -s "$TDIR/profile.folded" || {
  echo "profile produced empty folded stacks" >&2; exit 1; }
grep -q '(reconciled)' "$TDIR/profile.out" || {
  echo "profile census did not reconcile" >&2; exit 1; }
dune exec --no-build -- gigaflow-sim telemetry-check \
  --chrome "$TDIR/profile.trace.json" "$TDIR/profile.jsonl"

echo "== bench overhead floor"
# The committed benchmark figures must not contain nonsense overhead
# numbers: any *overhead_pct below the noise floor means the bench's
# baseline was mismeasured (the telemetry run cannot be faster than the
# uninstrumented one by more than timing noise).
dune exec --no-build -- gigaflow-sim telemetry-check --bench BENCH_throughput.json

echo "check.sh: all gates passed"
