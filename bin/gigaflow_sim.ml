(* gigaflow-sim: command-line driver for the Gigaflow reproduction.

   Subcommands:
     run        end-to-end datapath simulation on a generated workload
     pipelines  list the built-in vSwitch pipelines (paper Table 1)
     workload   generate a workload and print its statistics
     resources  FPGA occupancy estimate for a cache geometry *)

open Cmdliner
module Catalog = Gf_pipelines.Catalog
module Ruleset = Gf_workload.Ruleset
module Pipebench = Gf_workload.Pipebench
module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Parallel = Gf_sim.Parallel
module Engine = Gf_engine.Engine
module Tablefmt = Gf_util.Tablefmt

let pipeline_arg =
  let doc = "Pipeline code: OFD, PSC, OLS, ANT or OTL." in
  Arg.(value & opt string "PSC" & info [ "p"; "pipeline" ] ~docv:"CODE" ~doc)

let locality_conv = Arg.enum [ ("high", Ruleset.High); ("low", Ruleset.Low) ]

let locality_arg =
  Arg.(
    value
    & opt locality_conv Ruleset.High
    & info [ "l"; "locality" ] ~docv:"LOC" ~doc:"Traffic locality: high or low.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let flows_arg =
  Arg.(value & opt int 100_000 & info [ "flows" ] ~docv:"N" ~doc:"Unique flows.")

let combos_arg =
  Arg.(value & opt int 131_072 & info [ "combos" ] ~docv:"N" ~doc:"Rule chains in the generated ruleset.")

let hierarchy_arg =
  let doc =
    Printf.sprintf "Cache hierarchy preset: %s."
      (String.concat ", " Datapath.preset_names)
  in
  Arg.(
    value
    & opt (Arg.enum (List.map (fun n -> (n, n)) Datapath.preset_names)) "emc_gf_sw"
    & info [ "H"; "hierarchy" ] ~docv:"NAME" ~doc)

let tables_arg =
  Arg.(value & opt int 4 & info [ "tables" ] ~docv:"K" ~doc:"Gigaflow LTM tables.")

let capacity_arg =
  Arg.(
    value & opt int 8192
    & info
        [ "capacity"; "table-capacity" ]
        ~docv:"N" ~doc:"Entries per Gigaflow table (Megaflow uses 4x this).")

let policy_conv =
  Arg.enum
    (List.map
       (fun p -> (Gf_cache.Evict.to_string p, p))
       Gf_cache.Evict.all)

let evict_policy_arg =
  Arg.(
    value
    & opt (some policy_conv) None
    & info [ "evict-policy" ] ~docv:"POLICY"
        ~doc:
          "Replacement policy under capacity pressure for $(b,every) cache \
           level: reject, lru, random or priority.  Unset keeps each level's \
           historical default (EMC: lru; Megaflow and Gigaflow LTM: reject).")

let evict_policy_level_arg =
  Arg.(
    value
    & opt_all (pair ~sep:':' string policy_conv) []
    & info [ "evict-policy-level" ] ~docv:"LEVEL:POLICY"
        ~doc:
          "Per-level replacement policy override, e.g. \
           $(b,--evict-policy-level gf:lru).  Level names are the metrics \
           names (emc, nic-mf, sw-mf, gf).  Repeatable; applied after \
           $(b,--evict-policy).")

let churn_arg =
  Arg.(
    value & flag
    & info [ "churn" ]
        ~doc:
          "Replace the CAIDA-style trace with a churn trace: a rotating \
           active-flow window that keeps the caches under sustained install \
           pressure (see $(b,--churn-active), $(b,--churn-turnover)).")

let churn_active_arg =
  Arg.(
    value & opt int 512
    & info [ "churn-active" ] ~docv:"N"
        ~doc:"Churn mode: concurrently active flows per epoch.")

let churn_turnover_arg =
  Arg.(
    value & opt float 0.25
    & info [ "churn-turnover" ] ~docv:"F"
        ~doc:"Churn mode: fraction of the active window replaced each epoch.")

let max_idle_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-idle" ] ~docv:"SECONDS"
        ~doc:
          "Idle-entry expiry threshold for every cache level (default: the \
           preset's).  Large values disable idle expiry, isolating the \
           effect of the replacement policy.")

let churn_epochs_arg =
  Arg.(
    value & opt int 30
    & info [ "churn-epochs" ] ~docv:"N" ~doc:"Churn mode: number of epochs.")

let admission_conv =
  let parse s =
    match Gf_offload.Heavy_hitter.policy_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print ppf p =
    Format.pp_print_string ppf (Gf_offload.Heavy_hitter.policy_to_string p)
  in
  Arg.conv (parse, print)

let admission_arg =
  Arg.(
    value
    & opt (some admission_conv) None
    & info [ "admission" ] ~docv:"POLICY"
        ~doc:
          "Hardware-slot admission policy: $(b,all) installs every slowpath            into every level (the non-hh presets' default); $(b,hh)[:K] gates            hardware installs on a top-K space-saving sketch (K defaults to            128) — cold flows stay in the software tier until they get hot,            and a periodic sweep demotes entries whose flows went cold (the            *_hh presets' default).")

let hh_threshold_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hh-threshold" ] ~docv:"N"
        ~doc:
          "Heavy-hitter admission: minimum guaranteed sketch count            (count minus overestimation error) before a flow earns a            hardware slot (default 4).")

let sw_level_arg =
  Arg.(
    value
    & opt (some (Arg.enum [ ("megaflow", `Megaflow); ("cuckoo", `Cuckoo) ])) None
    & info [ "sw-level" ] ~docv:"KIND"
        ~doc:
          "Software cache flavour: $(b,megaflow) (wildcard entries,            classifier search) or $(b,cuckoo) (exact-match 2-choice cuckoo            table, two probes per lookup — the cheap home for mice under            heavy-hitter admission).")

let sw_search_arg =
  Arg.(
    value
    & opt
        (some
           (Arg.enum
              [ ("tss", `Tss); ("nuevomatch", `Nuevomatch); ("linear", `Linear) ]))
        None
    & info [ "sw-search" ] ~docv:"ALGO"
        ~doc:
          "Software wildcard cache search algorithm: $(b,tss) (tuple-space            search, the default), $(b,nuevomatch) (learned range-matching            model) or $(b,linear).")

let trace_kind_arg =
  Arg.(
    value
    & opt
        (Arg.enum
           [
             ("caida", `Caida);
             ("churn", `Churn);
             ("elephant", `Elephant);
             ("drift", `Drift);
           ])
        `Caida
    & info [ "trace" ] ~docv:"KIND"
        ~doc:
          "Trace generator: $(b,caida) (heavy-tailed flow sizes, the            default), $(b,churn) (rotating active window; same as            $(b,--churn)), $(b,elephant) (a few elephants over a sea of            one-shot mice; see $(b,--elephants), $(b,--elephant-share)) or            $(b,drift) (Zipf popularity whose heavy-hitter identity set            rotates each epoch).")

let elephants_arg =
  Arg.(
    value & opt int 16
    & info [ "elephants" ] ~docv:"N"
        ~doc:"Elephant trace: number of elephant flows.")

let elephant_share_arg =
  Arg.(
    value & opt float 0.8
    & info [ "elephant-share" ] ~docv:"F"
        ~doc:"Elephant trace: fraction of packets carried by the elephants.")

let find_pipeline code =
  match Catalog.find code with
  | Some info -> info
  | None ->
      Printf.eprintf "unknown pipeline %S (try: OFD PSC OLS ANT OTL)\n" code;
      exit 2

let telemetry_out_arg =
  Arg.(
    value & opt string ""
    & info [ "telemetry-out" ] ~docv:"PATH"
        ~doc:
          "Write the telemetry JSONL stream (time-series samples + flight-recorder \
           events) to $(docv), and a Prometheus text snapshot next to it \
           ($(docv) with a .prom extension).  Empty (the default) disables \
           telemetry entirely.")

let sample_every_arg =
  Arg.(
    value & opt int 10_000
    & info [ "sample-every" ] ~docv:"N"
        ~doc:
          "Telemetry time-series cadence: snapshot per-level hit rate, occupancy \
           and latency quantiles every $(docv) packets (0 disables sampling).")

let trace_events_arg =
  Arg.(
    value & opt int 0
    & info [ "trace-events" ] ~docv:"N"
        ~doc:
          "Record every $(docv)-th datapath event \
           (hit/miss/install/evict/promote/revalidate/reject) in the telemetry \
           flight recorder; 0 (the default) disables event tracing.")

let engine_arg =
  Arg.(
    value
    & opt (Arg.enum [ ("walker", `Walker); ("batched", `Batched) ]) `Walker
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Replay engine: $(b,walker) (the default per-packet hierarchy \
           walker) or $(b,batched) (the streaming engine: packet batches \
           over SPSC rings into long-lived worker domains, with per-batch \
           amortisation of telemetry and expiry checks).")

let batch_size_arg =
  Arg.(
    value & opt int 1024
    & info [ "batch-size" ] ~docv:"N"
        ~doc:"Batched engine: packets per batch (ignored by the walker).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Batched engine: worker domains; flows are RSS-sharded across \
           them exactly like $(b,Parallel.replay), so merged metrics are \
           independent of timing (ignored by the walker).")

let prom_path jsonl_path = Filename.remove_extension jsonl_path ^ ".prom"

let run_cmd =
  let run code locality seed flows combos hierarchy tables capacity policy
      level_policies max_idle churn churn_active churn_turnover churn_epochs
      trace_kind elephants elephant_share admission hh_threshold sw_level
      sw_search engine batch_size domains telemetry_out sample_every
      trace_events =
    let info = find_pipeline code in
    Printf.printf "Building workload: %s, %s locality, %d flows...\n%!" info.Catalog.code
      (Ruleset.locality_name locality) flows;
    let trace_kind = if churn then `Churn else trace_kind in
    let w =
      match trace_kind with
      | `Churn ->
          Pipebench.make_churn ~combos ~unique_flows:flows ~active:churn_active
            ~turnover:churn_turnover ~epochs:churn_epochs ~info ~locality ~seed ()
      | `Elephant ->
          Pipebench.make_elephant ~combos ~unique_flows:flows ~elephants
            ~elephant_share ~info ~locality ~seed ()
      | `Drift -> Pipebench.make_drift ~combos ~unique_flows:flows ~info ~locality ~seed ()
      | `Caida -> Pipebench.make ~combos ~unique_flows:flows ~info ~locality ~seed ()
    in
    (* Gigaflow-based presets take the LTM geometry; Megaflow-based ones get
       the same total entry budget (tables x capacity) in one table. *)
    let cfg =
      Option.get
        (Datapath.preset
           ~gf:(Gf_core.Config.v ~tables ~table_capacity:capacity ())
           ~mf_capacity:(tables * capacity) ?policy ?max_idle ?sw_search ?admission
           hierarchy)
    in
    let cfg =
      List.fold_left
        (fun cfg (level, p) -> Datapath.with_level_policy ~level p cfg)
        cfg level_policies
    in
    let cfg =
      match sw_level with Some k -> Datapath.with_sw_level k cfg | None -> cfg
    in
    let cfg =
      match hh_threshold with
      | Some th ->
          Datapath.with_admission
            (Gf_offload.Heavy_hitter.policy_with_threshold cfg.Datapath.admission th)
            cfg
      | None -> cfg
    in
    let tel_config =
      if String.equal telemetry_out "" then None
      else
        Some
          {
            Gf_telemetry.Telemetry.sample_every;
            event_capacity = 4096;
            event_sample_every = trace_events;
            trace_sample_every = 0;
          }
    in
    let print_metrics (m : Metrics.t) =
      let t = Tablefmt.create [ "Metric"; "Value" ] in
      let add k v = Tablefmt.add_row t [ k; v ] in
      add "hierarchy" cfg.Datapath.name;
      add "packets" (Tablefmt.fmt_int m.Metrics.packets);
      add "SmartNIC hit rate" (Tablefmt.fmt_pct (Metrics.hw_hit_rate m));
      add "SmartNIC misses" (Tablefmt.fmt_int (Metrics.hw_miss_count m));
      add "software-cache hits" (Tablefmt.fmt_int m.Metrics.sw_hits);
      add "slowpath executions" (Tablefmt.fmt_int m.Metrics.slowpaths);
      add "entries (peak)" (Tablefmt.fmt_int m.Metrics.hw_entries_peak);
      add "installs" (Tablefmt.fmt_int m.Metrics.hw_installs);
      add "shared sub-traversals" (Tablefmt.fmt_int m.Metrics.hw_shared);
      add "pressure evictions" (Tablefmt.fmt_int m.Metrics.hw_pressure_evictions);
      add "admission"
        (Gf_offload.Heavy_hitter.policy_to_string cfg.Datapath.admission);
      if m.Metrics.hw_deferred > 0 then
        add "deferred installs" (Tablefmt.fmt_int m.Metrics.hw_deferred);
      if m.Metrics.hw_demotions > 0 then
        add "admission demotions" (Tablefmt.fmt_int m.Metrics.hw_demotions);
      add "mean latency" (Printf.sprintf "%.2f us" (Metrics.mean_latency_us m));
      Tablefmt.print t;
      Printf.printf "Per-level breakdown:\n";
      Format.printf "%a%!" Metrics.pp_levels m
    in
    let write_telemetry tel =
      let meta =
        [
          ("pipeline", Gf_util.Json.Str info.Catalog.code);
          ("locality", Gf_util.Json.Str (Ruleset.locality_name locality));
          ("hierarchy", Gf_util.Json.Str cfg.Datapath.name);
          ("seed", Gf_util.Json.Int seed);
          ("flows", Gf_util.Json.Int flows);
          ("combos", Gf_util.Json.Int combos);
        ]
      in
      let oc = open_out telemetry_out in
      Gf_telemetry.Telemetry.write_jsonl ~meta oc tel;
      close_out oc;
      let prom = prom_path telemetry_out in
      let oc = open_out prom in
      output_string oc (Gf_telemetry.Telemetry.prometheus tel);
      close_out oc;
      Printf.printf "Telemetry: %s (JSONL), %s (Prometheus snapshot)\n"
        telemetry_out prom
    in
    match engine with
    | `Batched ->
        Printf.printf
          "Replaying %d packets (batched engine, %d domain%s, batch %d)...\n%!"
          (Gf_workload.Trace.packet_count w.Pipebench.trace)
          domains
          (if domains = 1 then "" else "s")
          batch_size;
        let r =
          Engine.replay ?telemetry:tel_config ~batch_size ~domains ~cfg
            (Pipebench.pipeline w)
            (Gf_workload.Trace.stream_of_trace w.Pipebench.trace)
        in
        print_metrics r.Parallel.merged;
        Printf.printf "Engine wall time: %.3f s (%s pkt/s over %d domain%s)\n"
          r.Parallel.wall_seconds
          (Tablefmt.fmt_si
             (float_of_int r.Parallel.merged.Metrics.packets
             /. Float.max 1e-9 r.Parallel.wall_seconds))
          r.Parallel.domains
          (if r.Parallel.domains = 1 then "" else "s");
        Option.iter write_telemetry r.Parallel.telemetry
    | `Walker ->
        let telemetry =
          Option.map
            (fun config -> Gf_telemetry.Telemetry.create ~config ())
            tel_config
        in
        let dp = Datapath.create ?telemetry cfg (Pipebench.pipeline w) in
        Printf.printf "Replaying %d packets...\n%!"
          (Gf_workload.Trace.packet_count w.Pipebench.trace);
        (* Sample Gigaflow coverage/sharing periodically: the interesting
           values are at steady state, not after the final idle sweep. *)
        let entry_tag = Gf_pipeline.Pipeline.entry (Pipebench.pipeline w) in
        let max_cov = ref 0.0 and max_share = ref 0.0 and count = ref 0 in
        let sample () =
          match Datapath.gigaflow dp with
          | Some gf ->
              let cache = Gf_core.Gigaflow.cache gf in
              let c = Gf_core.Coverage.count cache ~entry_tag in
              if c > !max_cov then max_cov := c;
              let s = Gf_core.Ltm_cache.mean_sharing cache in
              if (not (Float.is_nan s)) && s > !max_share then max_share := s
          | None -> ()
        in
        let m =
          Datapath.run
            ~on_packet:(fun _ _ _ ->
              incr count;
              if !count mod 10_000 = 0 then sample ())
            dp w.Pipebench.trace
        in
        sample ();
        print_metrics m;
        (match Datapath.gigaflow dp with
        | Some _ ->
            Printf.printf "Rule-space coverage (peak): %s\n"
              (Tablefmt.fmt_si !max_cov);
            Printf.printf "Mean sub-traversal sharing (peak): %.2f\n" !max_share
        | None -> ());
        (match Datapath.heavy_hitter dp with
        | Some hh ->
            Printf.printf "Top heavy hitters (sketch count / overestimation):\n";
            List.iter
              (fun (f, c, e) ->
                Printf.printf "  %-40s count=%d err=%d\n" (Gf_flow.Flow.to_string f)
                  c e)
              (Gf_offload.Heavy_hitter.top hh ~n:8)
        | None -> ());
        Option.iter write_telemetry telemetry
  in
  let term =
    Term.(
      const run $ pipeline_arg $ locality_arg $ seed_arg $ flows_arg $ combos_arg
      $ hierarchy_arg $ tables_arg $ capacity_arg $ evict_policy_arg
      $ evict_policy_level_arg $ max_idle_arg $ churn_arg $ churn_active_arg
      $ churn_turnover_arg $ churn_epochs_arg $ trace_kind_arg $ elephants_arg
      $ elephant_share_arg $ admission_arg $ hh_threshold_arg $ sw_level_arg
      $ sw_search_arg $ engine_arg $ batch_size_arg
      $ domains_arg $ telemetry_out_arg $ sample_every_arg $ trace_events_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run an end-to-end datapath simulation.") term

(* Sub-traversal tracing profiler: replay a workload with the traversal
   tracer on, then render the pulled spans as a folded-stack flamegraph,
   a chrome://tracing timeline, profile JSONL and a Prometheus snapshot,
   plus a per-(level, cause) miss-attribution table on stdout.  The
   census is exact (every miss is charged to exactly one cause), so the
   command exits non-zero if it fails to reconcile with the metrics. *)
let profile_cmd =
  let module Telemetry = Gf_telemetry.Telemetry in
  let module Tracer = Gf_telemetry.Tracer in
  let module Attribution = Gf_telemetry.Attribution in
  let sample_conv =
    let parse s =
      let v =
        match String.index_opt s '/' with
        | Some i when String.sub s 0 i = "1" ->
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        | Some _ -> None
        | None -> int_of_string_opt s
      in
      match v with
      | Some n when n >= 1 -> Ok n
      | Some _ | None ->
          Error
            (`Msg (Printf.sprintf "invalid sampling cadence %S (use N or 1/N)" s))
    in
    Arg.conv (parse, fun ppf n -> Format.fprintf ppf "1/%d" n)
  in
  let sample_arg =
    Arg.(
      value & opt sample_conv 256
      & info [ "sample" ] ~docv:"1/N"
          ~doc:
            "Trace every $(i,N)-th packet (accepts $(b,1/N) or plain \
             $(b,N); default 1/256).  The miss-cause census is always \
             exact regardless of the cadence — sampling only thins the \
             span streams behind the flamegraph and timeline.")
  in
  let out_arg =
    Arg.(
      value & opt string "profile"
      & info [ "o"; "out" ] ~docv:"PREFIX"
          ~doc:
            "Output prefix: writes $(docv).folded (flamegraph.pl / \
             speedscope), $(docv).trace.json (chrome://tracing / \
             Perfetto), $(docv).jsonl (profile lines) and $(docv).prom \
             (Prometheus snapshot).")
  in
  let run code locality seed flows combos hierarchy tables capacity policy
      level_policies max_idle churn churn_active churn_turnover churn_epochs
      trace_kind elephants elephant_share admission hh_threshold sw_level
      sw_search engine batch_size domains sample out =
    let info = find_pipeline code in
    let trace_kind = if churn then `Churn else trace_kind in
    Printf.printf "Building workload: %s, %s locality, %d flows...\n%!"
      info.Catalog.code
      (Ruleset.locality_name locality)
      flows;
    let w =
      match trace_kind with
      | `Churn ->
          Pipebench.make_churn ~combos ~unique_flows:flows ~active:churn_active
            ~turnover:churn_turnover ~epochs:churn_epochs ~info ~locality ~seed ()
      | `Elephant ->
          Pipebench.make_elephant ~combos ~unique_flows:flows ~elephants
            ~elephant_share ~info ~locality ~seed ()
      | `Drift -> Pipebench.make_drift ~combos ~unique_flows:flows ~info ~locality ~seed ()
      | `Caida -> Pipebench.make ~combos ~unique_flows:flows ~info ~locality ~seed ()
    in
    let cfg =
      Option.get
        (Datapath.preset
           ~gf:(Gf_core.Config.v ~tables ~table_capacity:capacity ())
           ~mf_capacity:(tables * capacity) ?policy ?max_idle ?sw_search ?admission
           hierarchy)
    in
    let cfg =
      List.fold_left
        (fun cfg (level, p) -> Datapath.with_level_policy ~level p cfg)
        cfg level_policies
    in
    let cfg =
      match sw_level with Some k -> Datapath.with_sw_level k cfg | None -> cfg
    in
    let cfg =
      match hh_threshold with
      | Some th ->
          Datapath.with_admission
            (Gf_offload.Heavy_hitter.policy_with_threshold cfg.Datapath.admission th)
            cfg
      | None -> cfg
    in
    let tel_config =
      {
        Telemetry.sample_every = 10_000;
        event_capacity = 4096;
        event_sample_every = 0;
        trace_sample_every = sample;
      }
    in
    let metrics, tel =
      match engine with
      | `Batched ->
          Printf.printf
            "Profiling %d packets (batched engine, %d domain%s, 1/%d sampled)...\n%!"
            (Gf_workload.Trace.packet_count w.Pipebench.trace)
            domains
            (if domains = 1 then "" else "s")
            sample;
          let r =
            Engine.replay ~telemetry:tel_config ~batch_size ~domains ~cfg
              (Pipebench.pipeline w)
              (Gf_workload.Trace.stream_of_trace w.Pipebench.trace)
          in
          (r.Parallel.merged, Option.get r.Parallel.telemetry)
      | `Walker ->
          Printf.printf "Profiling %d packets (walker, 1/%d sampled)...\n%!"
            (Gf_workload.Trace.packet_count w.Pipebench.trace)
            sample;
          let tel = Telemetry.create ~config:tel_config () in
          let dp = Datapath.create ~telemetry:tel cfg (Pipebench.pipeline w) in
          (Datapath.run dp w.Pipebench.trace, tel)
    in
    let tr =
      match Telemetry.tracer tel with
      | Some tr -> tr
      | None ->
          Printf.eprintf "profile: tracer never attached (internal error)\n";
          exit 1
    in
    let attr = Tracer.attribution tr in
    let total_misses =
      List.fold_left
        (fun acc lm -> acc + lm.Metrics.misses)
        0 (Metrics.levels metrics)
    in
    let write path contents =
      let oc = open_out path in
      output_string oc contents;
      close_out oc
    in
    write (out ^ ".folded") (Attribution.folded attr);
    write (out ^ ".trace.json")
      (Attribution.chrome_json ~us_of_cycles:Gf_nic.Latency.us_of_cycles attr);
    let meta =
      [
        ("pipeline", Gf_util.Json.Str info.Catalog.code);
        ("locality", Gf_util.Json.Str (Ruleset.locality_name locality));
        ("hierarchy", Gf_util.Json.Str cfg.Datapath.name);
        ( "engine",
          Gf_util.Json.Str
            (match engine with `Walker -> "walker" | `Batched -> "batched") );
        ("seed", Gf_util.Json.Int seed);
        ("sample_every", Gf_util.Json.Int sample);
      ]
    in
    let oc = open_out (out ^ ".jsonl") in
    Attribution.write_jsonl ~meta ~total_misses oc attr;
    close_out oc;
    write (out ^ ".prom") (Telemetry.prometheus tel);
    Printf.printf "Sampled %s of %s packets (%s spans)\n"
      (Tablefmt.fmt_int (Attribution.sampled_packets attr))
      (Tablefmt.fmt_int metrics.Metrics.packets)
      (Tablefmt.fmt_int (Attribution.spans attr));
    let t = Tablefmt.create [ "Level"; "Miss cause"; "Misses" ] in
    List.iter
      (fun (level, cause, n) ->
        Tablefmt.add_row t [ level; cause; Tablefmt.fmt_int n ])
      (Attribution.top_causes ~n:12 attr);
    Tablefmt.print t;
    let census = Attribution.census_total attr in
    let reconciled = census = total_misses in
    Printf.printf "Miss census: %s of %s metrics misses attributed (%s)\n"
      (Tablefmt.fmt_int census)
      (Tablefmt.fmt_int total_misses)
      (if reconciled then "reconciled" else "MISMATCH");
    Printf.printf "Profile: %s.folded, %s.trace.json, %s.jsonl, %s.prom\n" out
      out out out;
    if not reconciled then exit 1
  in
  let term =
    Term.(
      const run $ pipeline_arg $ locality_arg $ seed_arg $ flows_arg $ combos_arg
      $ hierarchy_arg $ tables_arg $ capacity_arg $ evict_policy_arg
      $ evict_policy_level_arg $ max_idle_arg $ churn_arg $ churn_active_arg
      $ churn_turnover_arg $ churn_epochs_arg $ trace_kind_arg $ elephants_arg
      $ elephant_share_arg $ admission_arg $ hh_threshold_arg $ sw_level_arg
      $ sw_search_arg $ engine_arg $ batch_size_arg $ domains_arg $ sample_arg
      $ out_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Replay a workload with sub-traversal tracing on and emit \
          flamegraph, chrome trace, JSONL and Prometheus profile outputs \
          with per-cause miss attribution.")
    term

(* Validate a telemetry JSONL file: every line must parse as JSON, the
   stream must carry a meta line and at least one time-series sample, and
   samples/events must expose the documented fields.  Loadtest JSONL
   streams (loadtest_meta/loadtest_window/loadtest_summary lines) are
   validated under their own schema.  [--bench] additionally walks a
   benchmark JSON document and rejects any *overhead_pct key below the
   noise floor (a negative "overhead" beyond jitter means the baseline
   timing is broken).  Exits non-zero on the first violation — check.sh
   uses this as the telemetry smoke gate. *)
let telemetry_check_cmd =
  let module J = Gf_util.Json in
  let fail line_no msg =
    Printf.eprintf "telemetry-check: line %d: %s\n" line_no msg;
    exit 1
  in
  let require line_no json field kind =
    match (J.member field json, kind) with
    | Some (J.Int _), `Num | Some (J.Float _), `Num -> ()
    | Some (J.Str _), `Str -> ()
    | Some (J.List _), `List -> ()
    | Some (J.Bool _), `Bool -> ()
    | Some _, _ -> fail line_no (Printf.sprintf "field %S has the wrong type" field)
    | None, _ -> fail line_no (Printf.sprintf "missing field %S" field)
  in
  let check_bench ~floor file =
    let bfail msg =
      Printf.eprintf "telemetry-check: %s: %s\n" file msg;
      exit 1
    in
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    match J.of_string text with
    | Error e -> bfail ("not valid JSON: " ^ e)
    | Ok json ->
        let contains_overhead name =
          let needle = "overhead_pct" in
          let nl = String.length needle and l = String.length name in
          let rec has i =
            i + nl <= l && (String.sub name i nl = needle || has (i + 1))
          in
          has 0
        in
        let checked = ref 0 in
        let rec walk path j =
          match j with
          | J.Obj fields ->
              List.iter
                (fun (name, v) ->
                  let p = if path = "" then name else path ^ "." ^ name in
                  (if contains_overhead name then
                     match J.to_float_opt v with
                     | Some x ->
                         incr checked;
                         if x < floor then
                           bfail
                             (Printf.sprintf "%s = %.2f is below the %.2f noise floor"
                                p x floor)
                     | None -> bfail (Printf.sprintf "%s is not numeric" p));
                  walk p v)
                fields
          | J.List items ->
              List.iteri
                (fun i v -> walk (Printf.sprintf "%s[%d]" path i) v)
                items
          | J.Null | J.Bool _ | J.Int _ | J.Float _ | J.Str _ -> ()
        in
        walk "" json;
        Printf.printf "%s: OK (%d overhead figure%s >= %.2f%%)\n" file !checked
          (if !checked = 1 then "" else "s")
          floor
  in
  (* chrome://tracing JSON: a traceEvents array of complete events, each
     with the fields the trace viewers require. *)
  let check_chrome file =
    let cfail msg =
      Printf.eprintf "telemetry-check: %s: %s\n" file msg;
      exit 1
    in
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    match J.of_string text with
    | Error e -> cfail ("not valid JSON: " ^ e)
    | Ok json -> (
        match Option.bind (J.member "traceEvents" json) J.to_list_opt with
        | None -> cfail "missing \"traceEvents\" array"
        | Some events ->
            List.iteri
              (fun i ev ->
                let evfail f =
                  cfail
                    (Printf.sprintf "traceEvents[%d]: missing or mistyped %S" i f)
                in
                let str f =
                  if Option.bind (J.member f ev) J.to_string_opt = None then
                    evfail f
                and num f =
                  if Option.bind (J.member f ev) J.to_float_opt = None then
                    evfail f
                in
                str "name";
                str "ph";
                num "ts";
                num "dur";
                num "pid";
                num "tid")
              events;
            Printf.printf "%s: OK (%d trace events)\n" file (List.length events))
  in
  let check file bench floor chrome =
    (match file with
    | None -> ()
    | Some file ->
        let ic = open_in file in
        let metas = ref 0 and samples = ref 0 and events = ref 0 in
        let lt_metas = ref 0 and lt_windows = ref 0 and lt_summaries = ref 0 in
        let lt_actions = ref 0 in
        let p_metas = ref 0 and p_lines = ref 0 and p_summaries = ref 0 in
        let p_cause_sum = ref 0 in
        let p_census = ref 0 and p_misses = ref 0 and p_reconciled = ref false in
        let line_no = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr line_no;
             if String.trim line <> "" then
               match J.of_string line with
               | Error e -> fail !line_no ("not valid JSON: " ^ e)
               | Ok json -> (
                   match Option.bind (J.member "type" json) J.to_string_opt with
                   | Some "meta" ->
                       incr metas;
                       require !line_no json "samples" `Num
                   | Some "sample" ->
                       incr samples;
                       List.iter
                         (fun f -> require !line_no json f `Num)
                         [
                           "packet"; "time"; "hw_hits"; "sw_hits"; "slowpaths";
                           "hw_hit_rate"; "mean_us"; "p50_us"; "p90_us"; "p99_us";
                           "p999_us";
                         ];
                       require !line_no json "levels" `List;
                       let levels =
                         Option.value ~default:[]
                           (Option.bind (J.member "levels" json) J.to_list_opt)
                       in
                       List.iter
                         (fun l ->
                           require !line_no l "level" `Str;
                           require !line_no l "tier" `Str;
                           List.iter
                             (fun f -> require !line_no l f `Num)
                             [ "hits"; "misses"; "hit_rate"; "occupancy"; "p50_us"; "p99_us" ])
                         levels
                   | Some "event" ->
                       incr events;
                       require !line_no json "kind" `Str;
                       require !line_no json "level" `Str;
                       List.iter
                         (fun f -> require !line_no json f `Num)
                         [ "seq"; "packet"; "time"; "latency_us"; "count" ]
                   | Some "loadtest_meta" ->
                       incr lt_metas;
                       List.iter
                         (fun f -> require !line_no json f `Str)
                         [ "commit"; "preset"; "engine" ];
                       List.iter
                         (fun f -> require !line_no json f `Num)
                         [
                           "rate_pps"; "warmup"; "window"; "windows";
                           "queue_budget_us"; "slo_p50_us"; "slo_p99_us";
                           "slo_p999_us"; "slo_drop_rate"; "slo_hw_hit_rate";
                         ]
                   | Some "loadtest_window" ->
                       incr lt_windows;
                       List.iter
                         (fun f -> require !line_no json f `Num)
                         [
                           "index"; "offered"; "processed"; "dropped";
                           "drop_rate"; "mean_us"; "p50_us"; "p99_us"; "p999_us";
                           "hw_hit_rate";
                         ];
                       require !line_no json "truncated" `Bool;
                       require !line_no json "violations" `List
                   | Some "controller_action" ->
                       incr lt_actions;
                       require !line_no json "window" `Num;
                       List.iter
                         (fun f -> require !line_no json f `Str)
                         [ "knob"; "level"; "from"; "to"; "reason" ]
                   | Some "loadtest_summary" ->
                       incr lt_summaries;
                       require !line_no json "pass" `Bool;
                       List.iter
                         (fun f -> require !line_no json f `Num)
                         [
                           "windows"; "total_offered"; "total_processed";
                           "total_dropped"; "violations";
                         ]
                   | Some "profile_meta" ->
                       incr p_metas;
                       require !line_no json "sampled_packets" `Num;
                       require !line_no json "spans" `Num;
                       require !line_no json "levels" `List
                   | Some "profile_level" ->
                       incr p_lines;
                       require !line_no json "level" `Str;
                       require !line_no json "outcome" `Str;
                       require !line_no json "spans" `Num;
                       require !line_no json "cycles" `Num
                   | Some "profile_table" ->
                       incr p_lines;
                       List.iter
                         (fun f -> require !line_no json f `Num)
                         [ "table"; "visits"; "cycles" ]
                   | Some "profile_depth" ->
                       incr p_lines;
                       List.iter
                         (fun f -> require !line_no json f `Num)
                         [ "depth"; "spans" ]
                   | Some "profile_cause" ->
                       incr p_lines;
                       require !line_no json "level" `Str;
                       require !line_no json "cause" `Str;
                       require !line_no json "count" `Num;
                       p_cause_sum :=
                         !p_cause_sum
                         + Option.value ~default:0
                             (Option.bind (J.member "count" json) J.to_int_opt)
                   | Some "profile_summary" ->
                       incr p_summaries;
                       require !line_no json "census_total" `Num;
                       require !line_no json "total_misses" `Num;
                       require !line_no json "reconciled" `Bool;
                       let geti f =
                         Option.value ~default:0
                           (Option.bind (J.member f json) J.to_int_opt)
                       in
                       p_census := geti "census_total";
                       p_misses := geti "total_misses";
                       p_reconciled :=
                         J.member "reconciled" json = Some (J.Bool true)
                   | Some other ->
                       fail !line_no (Printf.sprintf "unknown line type %S" other)
                   | None -> fail !line_no "missing \"type\" field")
           done
         with End_of_file -> close_in ic);
        if !p_metas + !p_lines + !p_summaries > 0 then begin
          (* Profile stream: meta, at least one aggregate line, one
             summary whose census reconciles — both against the run's
             metrics misses and internally against the emitted
             per-cause lines. *)
          if !p_metas = 0 then fail !line_no "no profile_meta line found";
          if !p_lines = 0 then fail !line_no "no profile aggregate lines found";
          if !p_summaries = 0 then fail !line_no "no profile_summary line found";
          if not !p_reconciled then
            fail !line_no
              (Printf.sprintf
                 "miss census (%d) does not reconcile with metrics misses (%d)"
                 !p_census !p_misses);
          if !p_cause_sum <> !p_census then
            fail !line_no
              (Printf.sprintf
                 "profile_cause counts sum to %d but census_total is %d"
                 !p_cause_sum !p_census);
          Printf.printf
            "%s: OK (%d profile meta, %d aggregate lines, census %d reconciled)\n"
            file !p_metas !p_lines !p_census
        end
        else if !lt_metas + !lt_windows + !lt_summaries + !lt_actions > 0
        then begin
          (* Loadtest stream: meta, at least one window, one summary;
             controller_action lines are optional but only valid here. *)
          if !lt_metas = 0 then fail !line_no "no loadtest_meta line found";
          if !lt_windows = 0 then fail !line_no "no loadtest_window lines found";
          if !lt_summaries = 0 then fail !line_no "no loadtest_summary line found";
          Printf.printf
            "%s: OK (%d loadtest meta, %d windows, %d summary, %d controller \
             actions)\n"
            file !lt_metas !lt_windows !lt_summaries !lt_actions
        end
        else begin
          if !metas = 0 then fail !line_no "no meta line found";
          if !samples = 0 then fail !line_no "no time-series samples found";
          Printf.printf "%s: OK (%d meta, %d samples, %d events)\n" file !metas
            !samples !events
        end);
    (match bench with
    | Some bench -> check_bench ~floor bench
    | None -> ());
    (match chrome with Some chrome -> check_chrome chrome | None -> ());
    if file = None && bench = None && chrome = None then begin
      Printf.eprintf
        "telemetry-check: nothing to check (pass FILE, --bench and/or --chrome)\n";
      exit 2
    end
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Telemetry JSONL file to validate.")
  in
  let bench_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~docv:"JSON"
          ~doc:
            "Also validate a benchmark JSON document: every key containing \
             $(i,overhead_pct) must be numeric and at or above the noise \
             floor ($(b,--overhead-floor)).")
  in
  let floor_arg =
    Arg.(
      value & opt float (-3.0)
      & info [ "overhead-floor" ] ~docv:"PCT"
          ~doc:
            "Lowest acceptable overhead figure in $(b,--bench) mode; \
             anything below it means the baseline timing is noise-broken.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"JSON"
          ~doc:
            "Also validate a chrome://tracing JSON file (as written by \
             $(b,gigaflow-sim profile)): a $(i,traceEvents) array whose \
             events carry name/ph/ts/dur/pid/tid.")
  in
  Cmd.v
    (Cmd.info "telemetry-check"
       ~doc:"Validate a telemetry JSONL file (parseability + required series).")
    Term.(const check $ file_arg $ bench_arg $ floor_arg $ chrome_arg)

(* Fixed-rate SLO load test (packetblaster-style): sustained offered load
   through a single-server queue in front of the datapath, p50/p99/p99.9
   sojourn + drop-rate + hardware-hit-rate objectives per measurement
   window, a machine-readable JSONL report, and --gate turning SLO
   violations into a non-zero exit for CI. *)
let loadtest_cmd =
  let module Loadtest = Gf_engine.Loadtest in
  let rate_arg =
    Arg.(
      value & opt float 1e6
      & info [ "rate" ] ~docv:"PPS" ~doc:"Offered load, packets per second.")
  in
  let warmup_arg =
    Arg.(
      value & opt int 50_000
      & info [ "warmup" ] ~docv:"N"
          ~doc:"Offered packets before measurement starts (caches converge).")
  in
  let window_arg =
    Arg.(
      value & opt int 100_000
      & info [ "window" ] ~docv:"N" ~doc:"Offered packets per measurement window.")
  in
  let windows_arg =
    Arg.(
      value & opt int 5
      & info [ "windows" ] ~docv:"K" ~doc:"Measurement windows after warmup.")
  in
  let queue_budget_arg =
    Arg.(
      value & opt float 500.0
      & info [ "queue-budget" ] ~docv:"US"
          ~doc:
            "Tail-drop threshold: a packet whose queueing delay would exceed \
             $(docv) microseconds is dropped before reaching the datapath.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Zipf skew of the steady-state traffic over the flow population.")
  in
  let slo_p50_arg =
    Arg.(
      value & opt float Loadtest.default_slo.Loadtest.slo_p50_us
      & info [ "slo-p50" ] ~docv:"US" ~doc:"SLO: sojourn median bound.")
  in
  let slo_p99_arg =
    Arg.(
      value & opt float Loadtest.default_slo.Loadtest.slo_p99_us
      & info [ "slo-p99" ] ~docv:"US" ~doc:"SLO: sojourn p99 bound.")
  in
  let slo_p999_arg =
    Arg.(
      value & opt float Loadtest.default_slo.Loadtest.slo_p999_us
      & info [ "slo-p999" ] ~docv:"US" ~doc:"SLO: sojourn p99.9 bound.")
  in
  let slo_drop_arg =
    Arg.(
      value & opt float Loadtest.default_slo.Loadtest.slo_drop_rate
      & info [ "slo-drop-rate" ] ~docv:"F"
          ~doc:"SLO: dropped/offered bound per window.")
  in
  let slo_hit_arg =
    Arg.(
      value & opt float Loadtest.default_slo.Loadtest.slo_hw_hit_rate
      & info [ "slo-hit-rate" ] ~docv:"F"
          ~doc:"SLO: hardware hits / processed floor per window.")
  in
  let out_arg =
    Arg.(
      value & opt string ""
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:
            "Write the JSONL report (loadtest_meta + one loadtest_window per \
             window + loadtest_summary) to $(docv).")
  in
  let gate_arg =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:"Exit non-zero when any measurement window violates the SLO.")
  in
  let trace_arg =
    Arg.(
      value & opt string "steady"
      & info [ "trace" ] ~docv:"KIND"
          ~doc:
            "Traffic shape: $(b,steady) (stable Zipf working set) or \
             $(b,drift) (the rank->flow mapping rotates each epoch, sliding \
             the heavy-hitter identity set).")
  in
  let epochs_arg =
    Arg.(
      value & opt int 8
      & info [ "epochs" ] ~docv:"E"
          ~doc:"Drift epochs across the run (with --trace drift).")
  in
  let drift_arg =
    Arg.(
      value & opt int 64
      & info [ "drift" ] ~docv:"D"
          ~doc:"Flows the mapping rotates by per epoch (with --trace drift).")
  in
  let controller_arg =
    Arg.(
      value & opt string ""
      & info [ "controller" ] ~docv:"SPEC"
          ~doc:
            "Attach the adaptive SLO controller: $(b,slo) optionally followed \
             by comma-separated key=value overrides (min-threshold, max-k, \
             max-sw-capacity, cooldown, max-actions).  The controller observes \
             each window close (plus the warmup) and retunes admission, \
             eviction policy and software capacity within bounds.")
  in
  let run code locality seed flows combos hierarchy tables capacity rate warmup
      window windows queue_budget zipf trace_kind epochs drift controller_spec
      slo_p50 slo_p99 slo_p999 slo_drop slo_hit out gate =
    let info = find_pipeline code in
    let w = Pipebench.make ~combos ~unique_flows:flows ~info ~locality ~seed () in
    let cfg =
      Option.get
        (Datapath.preset
           ~gf:(Gf_core.Config.v ~tables ~table_capacity:capacity ())
           ~mf_capacity:(tables * capacity) hierarchy)
    in
    let packets = warmup + (windows * window) in
    let stream =
      match trace_kind with
      | "steady" ->
          Gf_workload.Trace.steady ~zipf_s:zipf ~packets ~seed:(seed + 1)
            ~flows:w.Pipebench.flows ()
      | "drift" ->
          let per_epoch = (packets + epochs - 1) / epochs in
          Gf_workload.Trace.stream_of_trace
            (Gf_workload.Trace.drifting_skew ~epochs ~zipf_s:zipf ~drift
               ~packets_per_epoch:per_epoch ~seed:(seed + 1)
               ~flows:w.Pipebench.flows ())
      | other ->
          Printf.eprintf "unknown --trace %S (expected steady or drift)\n" other;
          exit 2
    in
    let controller =
      if controller_spec = "" then None
      else
        match Gf_control.Controller.spec_of_string controller_spec with
        | Error e ->
            Printf.eprintf "bad --controller spec: %s\n" e;
            exit 2
        | Ok spec -> Some (Gf_control.Controller.create ~spec ())
    in
    (* The controller steers off the exact miss-cause census, which lives
       on the traversal tracer: attach a telemetry handle whose tracer
       samples (expensive) spans essentially never but keeps the
       (always-on, exact) census. *)
    let telemetry =
      Option.map
        (fun _ ->
          Gf_telemetry.Telemetry.create
            ~config:
              {
                Gf_telemetry.Telemetry.default_config with
                sample_every = 0;
                event_sample_every = 0;
                trace_sample_every = 1 lsl 30;
              }
            ())
        controller
    in
    let slo =
      {
        Loadtest.slo_p50_us = slo_p50;
        slo_p99_us = slo_p99;
        slo_p999_us = slo_p999;
        slo_drop_rate = slo_drop;
        slo_hw_hit_rate = slo_hit;
      }
    in
    Printf.printf
      "Loadtest: %s on %s, %s pkt/s offered, %d warmup + %d x %d measured...\n%!"
      cfg.Datapath.name info.Catalog.code (Tablefmt.fmt_si rate) warmup windows
      window;
    let r =
      Loadtest.run ~queue_budget_us:queue_budget ~warmup ~window ~windows
        ?telemetry
        ?controller:
          (Option.map
             (fun c dp wr -> Gf_control.Controller.on_window c dp wr)
             controller)
        ~rate ~slo cfg (Pipebench.pipeline w) stream
    in
    let t =
      Tablefmt.create
        [ "Window"; "Offered"; "Dropped"; "p50 us"; "p99 us"; "p99.9 us";
          "HW hit"; "SLO" ]
    in
    List.iter
      (fun (wr : Loadtest.window) ->
        Tablefmt.add_row t
          [
            string_of_int wr.Loadtest.w_index;
            Tablefmt.fmt_int wr.Loadtest.w_offered;
            Tablefmt.fmt_int wr.Loadtest.w_dropped;
            Printf.sprintf "%.2f" wr.Loadtest.w_p50_us;
            Printf.sprintf "%.2f" wr.Loadtest.w_p99_us;
            Printf.sprintf "%.2f" wr.Loadtest.w_p999_us;
            Tablefmt.fmt_pct wr.Loadtest.w_hw_hit_rate;
            (if wr.Loadtest.w_violations = [] then "ok"
             else String.concat "; " wr.Loadtest.w_violations);
          ])
      r.Loadtest.windows;
    Tablefmt.print t;
    (match controller with
    | Some c when Gf_control.Controller.actions c <> [] ->
        let at =
          Tablefmt.create [ "Window"; "Knob"; "Level"; "From"; "To"; "Why" ]
        in
        List.iter
          (fun (a : Gf_control.Controller.action) ->
            Tablefmt.add_row at
              [
                (if a.Gf_control.Controller.act_window < 0 then "warmup"
                 else string_of_int a.Gf_control.Controller.act_window);
                a.Gf_control.Controller.act_knob;
                a.Gf_control.Controller.act_level;
                a.Gf_control.Controller.act_from;
                a.Gf_control.Controller.act_to;
                a.Gf_control.Controller.act_reason;
              ])
          (Gf_control.Controller.actions c);
        Printf.printf "Controller actions:\n";
        Tablefmt.print at
    | Some _ -> Printf.printf "Controller actions: none (all windows clean)\n"
    | None -> ());
    Printf.printf "SLO gate: %s (%d/%d windows clean, %d dropped of %d offered)\n"
      (if r.Loadtest.pass then "PASS" else "FAIL")
      (List.length
         (List.filter
            (fun (wr : Loadtest.window) -> wr.Loadtest.w_violations = [])
            r.Loadtest.windows))
      (List.length r.Loadtest.windows)
      r.Loadtest.total_dropped r.Loadtest.total_offered;
    if out <> "" then begin
      let meta =
        [
          ("pipeline", Gf_util.Json.Str info.Catalog.code);
          ("hierarchy", Gf_util.Json.Str cfg.Datapath.name);
          ("seed", Gf_util.Json.Int seed);
          ("flows", Gf_util.Json.Int flows);
          ("zipf_s", Gf_util.Json.Float zipf);
          ("trace", Gf_util.Json.Str trace_kind);
        ]
        @
        match controller with
        | None -> []
        | Some _ ->
            [
              ( "controller",
                Gf_util.Json.Str
                  (Gf_control.Controller.spec_to_string
                     (match
                        Gf_control.Controller.spec_of_string controller_spec
                      with
                     | Ok s -> s
                     | Error _ -> Gf_control.Controller.default_spec)) );
            ]
      in
      let extra =
        match controller with
        | None -> []
        | Some c ->
            List.map Gf_control.Controller.action_json
              (Gf_control.Controller.actions c)
      in
      let oc = open_out out in
      Loadtest.write_jsonl ~meta ~extra oc r;
      close_out oc;
      Printf.printf "Loadtest JSONL: %s\n" out
    end;
    if gate && not r.Loadtest.pass then exit 1
  in
  let term =
    Term.(
      const run $ pipeline_arg $ locality_arg $ seed_arg $ flows_arg $ combos_arg
      $ hierarchy_arg $ tables_arg $ capacity_arg $ rate_arg $ warmup_arg
      $ window_arg $ windows_arg $ queue_budget_arg $ zipf_arg $ trace_arg
      $ epochs_arg $ drift_arg $ controller_arg $ slo_p50_arg $ slo_p99_arg
      $ slo_p999_arg $ slo_drop_arg $ slo_hit_arg $ out_arg $ gate_arg)
  in
  Cmd.v
    (Cmd.info "loadtest"
       ~doc:
         "Offer a sustained fixed-rate load and judge latency/drop/hit-rate \
          SLOs per measurement window.")
    term

let pipelines_cmd =
  let show () =
    let t = Tablefmt.create [ "Code"; "Tables"; "Traversals"; "Description" ] in
    List.iter
      (fun info ->
        Tablefmt.add_row t
          [
            info.Catalog.code;
            string_of_int (Catalog.table_count info);
            string_of_int (Catalog.traversal_count info);
            info.Catalog.description;
          ])
      Catalog.all;
    Tablefmt.print t
  in
  Cmd.v
    (Cmd.info "pipelines" ~doc:"List the built-in vSwitch pipelines (paper Table 1).")
    Term.(const show $ const ())

let workload_cmd =
  let show code locality seed flows combos =
    let info = find_pipeline code in
    let w = Pipebench.make ~combos ~unique_flows:flows ~info ~locality ~seed () in
    let t = Tablefmt.create [ "Property"; "Value" ] in
    Tablefmt.add_row t [ "pipeline"; info.Catalog.code ];
    Tablefmt.add_row t [ "locality"; Ruleset.locality_name locality ];
    Tablefmt.add_row t [ "rule chains (combos)"; Tablefmt.fmt_int (Ruleset.combo_count w.Pipebench.ruleset) ];
    Tablefmt.add_row t
      [ "pipeline rules installed"; Tablefmt.fmt_int (Ruleset.rule_count w.Pipebench.ruleset) ];
    Tablefmt.add_row t [ "unique flows"; Tablefmt.fmt_int (Array.length w.Pipebench.flows) ];
    Tablefmt.add_row t
      [ "trace packets"; Tablefmt.fmt_int (Gf_workload.Trace.packet_count w.Pipebench.trace) ];
    Tablefmt.print t
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate a Pipebench workload and print statistics.")
    Term.(const show $ pipeline_arg $ locality_arg $ seed_arg $ flows_arg $ combos_arg)

let resources_cmd =
  let show tables capacity =
    let e = Gf_nic.Resources.estimate ~tables ~table_capacity:capacity in
    Printf.printf "Gigaflow %dx%d on an Alveo U250: %s%s\n" tables capacity
      (Format.asprintf "%a" Gf_nic.Resources.pp e)
      (if Gf_nic.Resources.fits e then "" else "  [EXCEEDS BUDGET]")
  in
  Cmd.v
    (Cmd.info "resources" ~doc:"Estimate FPGA occupancy for a cache geometry.")
    Term.(const show $ tables_arg $ capacity_arg)

let export_p4_cmd =
  let show tables capacity =
    print_string (Gf_nic.P4gen.emit ~tables ~table_capacity:capacity)
  in
  Cmd.v
    (Cmd.info "export-p4"
       ~doc:"Emit the P4_16 LTM pipeline for a cache geometry (paper Fig. 6).")
    Term.(const show $ tables_arg $ capacity_arg)

let dump_flows_cmd =
  let show code seed combos =
    let info = find_pipeline code in
    let rs = Ruleset.build ~combos ~info ~seed () in
    print_string (Gf_pipeline.Ofp_text.dump_pipeline (Ruleset.pipeline rs))
  in
  Cmd.v
    (Cmd.info "dump-flows"
       ~doc:"Generate a ruleset and dump it in ovs-ofctl flow syntax.")
    Term.(const show $ pipeline_arg $ seed_arg $ combos_arg)

let export_trace_cmd =
  let show code locality seed flows combos path =
    let info = find_pipeline code in
    let w = Pipebench.make ~combos ~unique_flows:flows ~info ~locality ~seed () in
    Gf_workload.Serial.save ~path
      (Gf_workload.Serial.trace_to_string w.Pipebench.trace);
    Printf.printf "wrote %d packets to %s\n"
      (Gf_workload.Trace.packet_count w.Pipebench.trace)
      path
  in
  let path_arg =
    Arg.(value & opt string "trace.txt" & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export-trace" ~doc:"Generate a workload and save its packet trace.")
    Term.(const show $ pipeline_arg $ locality_arg $ seed_arg $ flows_arg $ combos_arg $ path_arg)

let () =
  let doc = "Gigaflow: pipeline-aware sub-traversal caching (ASPLOS'25 reproduction)" in
  let info = Cmd.info "gigaflow-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; profile_cmd; loadtest_cmd; pipelines_cmd; workload_cmd;
            resources_cmd; export_p4_cmd; dump_flows_cmd; export_trace_cmd;
            telemetry_check_cmd;
          ]))
